"""Deterministic fault injection for the sharded advisor fleet.

The fault-tolerance layer in :mod:`repro.serve.sharding` — the worker
supervisor, per-request deadlines, and degraded verdicts — only earns
trust if its failure paths are *exercised*, and real worker crashes are
not reproducible.  :class:`ChaosConfig` makes them reproducible: it is a
frozen schedule of faults keyed on ``(worker slot, serving-call index)``
that every worker evaluates at exactly the same points on every run, so a
chaos test that passes once passes always and a failure bisects cleanly.

Five fault kinds, mirroring how production workers actually fail:

* ``kill`` — the worker process exits immediately (``os._exit``), the
  moral equivalent of an OOM kill or a segfault in a native extension.
* ``hang`` — the worker sleeps for ``hang_s`` before serving; with the
  default (an hour) the worker is wedged and only the supervisor's
  heartbeat can recover the slot.
* ``slow`` — the worker sleeps ``slow_s`` and then answers normally; the
  reply is late but correct (a GC pause, a cold cache).
* ``drop`` — the worker consumes the request and never replies, then
  keeps serving; the parent sees a *lost reply* from an otherwise-healthy
  process (a reply queue hiccup), which pre-deadline code hung on forever.
* ``malformed`` — the worker answers ``ok`` with a garbage payload
  (``malformed_payload``), standing in for a corrupted IPC message.

The schedule is transport-agnostic: the worker loop hands ``inject_fault``
whatever reply channel the faulted request arrived on.  On the queue
transport ``malformed`` puts a garbage pickled payload; on the
shared-memory rings (:mod:`repro.serve.shm_ring`, the default data plane)
the channel is the worker's reply ring and ``malformed`` commits a frame
with a deliberately bad CRC — a *torn write*, which the parent detects by
checksum and retries.  ``drop`` on the ring transport consumes the request
slot and never commits a reply (the slot itself is recycled — SPSC slots
free on consume — so one dropped request can never wedge the ring), and
``kill`` exercises a worker dying between consuming a request frame and
committing its reply.

The schedule is injected at engine construction
(``ShardedEngine(..., chaos=ChaosConfig(...))``) and shipped to each
worker with its slot index; only worker processes consult it, the parent
(and its in-process fallback engine) never injects.  Used by
``tests/test_serve_faults.py``, ``tests/test_serve_ipc.py``, and the
fault-injection section of ``benchmarks/bench_serving_throughput.py``;
wired into CI as the ``chaos-smoke`` stage (``scripts/check.sh --chaos``).
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["ChaosConfig", "inject_fault"]

#: Fault kinds in precedence order: when one call index appears in several
#: schedules, the most disruptive fault wins.
FAULT_KINDS = ("kill", "hang", "drop", "malformed", "slow")


@dataclass(frozen=True)
class ChaosConfig:
    """A deterministic schedule of worker faults.

    Each ``*_at`` field lists the serving-call indices (0-based, counted
    per worker over the bulk serving methods only — pings, stats, and
    rollout broadcasts never advance the counter) at which that fault
    fires.  ``slots`` restricts the schedule to specific worker slots
    (``None`` = every slot).  A respawned worker starts a fresh call
    counter but is only re-armed when ``rearm`` is true — the default
    ``False`` models a transient fault (the replacement worker is
    healthy); ``rearm=True`` models a crash-looping checkpoint (every
    respawn dies again, exhausting the restart budget).
    """

    kill_at: Tuple[int, ...] = ()
    hang_at: Tuple[int, ...] = ()
    drop_at: Tuple[int, ...] = ()
    malformed_at: Tuple[int, ...] = ()
    slow_at: Tuple[int, ...] = ()
    slots: Optional[Tuple[int, ...]] = None
    rearm: bool = False
    hang_s: float = 3600.0
    slow_s: float = 0.25
    malformed_payload: object = field(default="\x00chaos-malformed-reply")
    exit_code: int = 17

    def applies_to(self, slot: int) -> bool:
        """Whether this schedule targets worker ``slot``."""
        return self.slots is None or slot in self.slots

    def fault_at(self, call_index: int) -> Optional[str]:
        """The fault kind scheduled for ``call_index``, or ``None``.

        Precedence follows ``FAULT_KINDS``: a call index listed under
        several fault kinds takes the most disruptive one.
        """
        for kind in FAULT_KINDS:
            if call_index in getattr(self, f"{kind}_at"):
                return kind
        return None

    @classmethod
    def seeded(cls, seed: int, n_calls: int, kills: int = 1, hangs: int = 0,
               drops: int = 0, malformed: int = 0, slows: int = 0,
               **overrides) -> "ChaosConfig":
        """Derive a schedule pseudo-randomly but reproducibly from ``seed``.

        Samples ``kills + hangs + drops + malformed + slows`` distinct
        call indices from ``range(n_calls)`` with a seeded generator and
        partitions them across the fault kinds, so benches can say "one
        kill and one hang somewhere in the trace" without hand-picking
        indices.  Extra keyword ``overrides`` pass through to the
        constructor (``slots``, ``hang_s``, ...).
        """
        counts = {"kill": kills, "hang": hangs, "drop": drops,
                  "malformed": malformed, "slow": slows}
        total = sum(counts.values())
        if total > n_calls:
            raise ValueError(f"cannot place {total} faults in {n_calls} calls")
        picks = random.Random(seed).sample(range(n_calls), total)
        schedule = {}
        cursor = 0
        for kind in FAULT_KINDS:
            take = counts[kind]
            schedule[f"{kind}_at"] = tuple(sorted(picks[cursor:cursor + take]))
            cursor += take
        return cls(**schedule, **overrides)


def inject_fault(chaos: ChaosConfig, slot: int, call_index: int,
                 responses, rid) -> bool:
    """Apply the fault scheduled at ``(slot, call_index)``, if any.

    Called by the worker loop before dispatching a serving request.
    ``responses`` is the reply channel the request arrived on — the raw
    ``multiprocessing.Queue`` on the queue transport, a ring-backed shim
    (``sharding._RingResponder``) on the shared-memory transport; either
    way it exposes ``put((rid, "ok", payload))``, which the ring shim
    realizes as a corrupt-CRC frame (a torn write).  Returns ``True``
    when the request was fully consumed by the fault (``drop``: no reply
    ever; ``malformed``: a garbage ``ok`` reply was already sent) — the
    worker must then skip normal dispatch.  ``kill`` never returns,
    ``hang``/``slow`` sleep and return ``False`` so the (late) request
    is still served.
    """
    if not chaos.applies_to(slot):
        return False
    fault = chaos.fault_at(call_index)
    if fault is None:
        return False
    if fault == "kill":
        os._exit(chaos.exit_code)
    if fault == "hang":
        time.sleep(chaos.hang_s)
        return False
    if fault == "slow":
        time.sleep(chaos.slow_s)
        return False
    if fault == "drop":
        return True
    # malformed: a well-formed envelope around a garbage result
    responses.put((rid, "ok", chaos.malformed_payload))
    return True
