"""The v1 advice API: one request/response pair for every advice surface.

Serving grew five overlapping entry points (``advise`` / ``advise_full`` /
``advise_many`` / ``advise_full_many`` / the ``*_encoded`` twins), each
returning a slightly different shape and none carrying the operational
context a caller actually wants — which model version answered, whether
the canary arm served the request, whether lexing needed error recovery.
The v1 surface collapses them behind one dataclass pair:

- :class:`AdviceRequest` — a snippet in (source text, or a pre-encoded
  token-id row plus its source digest), with an optional caller
  correlation ``id``.
- :class:`AdviceResult` — verdict + per-clause advice out, with
  ``degraded`` / ``recovered`` / ``model_version`` / ``arm`` as
  first-class fields instead of side channels.

``MultiModelEngine.advise_v1`` and ``ShardedEngine.advise_v1`` consume and
produce these; the legacy methods remain as thin deprecated shims (see
their docstrings) with a parity test pinning old == new field by field.
Over HTTP the same shapes serve ``/v1/advise`` and ``/v1/advise/batch``
(``docs/serving.md`` documents the JSON schemas); ``schema_version`` in
``/stats`` reports :data:`SCHEMA_VERSION` so clients can detect the
surface they are talking to.

This module is deliberately dependency-light (no engine/registry imports)
so every serving layer can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["SCHEMA_VERSION", "AdviceRequest", "AdviceResult"]

#: Version of the v1 request/response wire schema, reported in ``/stats``.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class AdviceRequest:
    """One snippet submitted for advice.

    Exactly one input form must be provided: ``code`` (source text — the
    normal path, the engine lexes and encodes it) or ``ids`` + ``digest``
    (a pre-encoded token-id row and the source digest it was derived
    from, for callers that already ran the codec, e.g. the shared-memory
    router).  ``id`` is an opaque caller correlation tag echoed back on
    the matching :class:`AdviceResult`.
    """

    code: Optional[str] = None
    ids: Optional[object] = None     # np.ndarray row; object to stay dep-free
    digest: Optional[bytes] = None
    id: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.code is None) == (self.ids is None):
            raise ValueError(
                "AdviceRequest needs exactly one of code= or ids=")
        if self.ids is not None and self.digest is None:
            raise ValueError(
                "AdviceRequest with ids= needs the source digest= too")

    @classmethod
    def of(cls, request) -> "AdviceRequest":
        """Coerce ``request`` to an :class:`AdviceRequest`.

        Accepts an existing request (returned as-is) or a bare string
        (wrapped as ``code``) so bulk callers can pass plain snippet
        lists without ceremony.
        """
        if isinstance(request, cls):
            return request
        if isinstance(request, str):
            return cls(code=request)
        raise TypeError(
            f"cannot make an AdviceRequest from {type(request).__name__}")


@dataclass(frozen=True)
class AdviceResult:
    """One advisor answer, with its operational context attached.

    ``verdict``/``probability`` are the directive decision (positive iff
    P(+) > 0.5, exactly the legacy rule); ``clauses`` maps clause-head
    name to ``(probability, suggested)`` pairs and ``recommended_clauses``
    lists the ones worth suggesting (directive-positive and p > 0.5).
    ``degraded`` marks a neutral placeholder the fleet could not compute;
    ``recovered`` marks a real verdict computed from error-recovered
    lexing; ``model_version`` is the checkpoint tag that answered and
    ``arm`` is ``"primary"`` or ``"canary"`` under a live canary rollout.
    ``id`` echoes the request's correlation tag.
    """

    verdict: bool
    probability: float
    clauses: Dict[str, object] = field(default_factory=dict)
    degraded: bool = False
    recovered: bool = False
    model_version: str = "0"
    arm: str = "primary"
    id: Optional[str] = None

    def recommended_clauses(self) -> List[str]:
        """Clause names worth suggesting: verdict-positive and p > 0.5."""
        if not self.verdict:
            return []
        return [name for name, c in self.clauses.items() if c.suggested]

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready dict — a strict superset of the legacy
        ``FullAdvice.as_dict`` shape, so v1 responses stay readable by
        legacy clients (same keys, same rounding) while adding the new
        first-class fields."""
        body = {
            "needs_directive": self.verdict,
            "p_directive": round(self.probability, 6),
            "clauses": {
                name: {"probability": round(c.probability, 6),
                       "suggested": c.suggested}
                for name, c in self.clauses.items()
            },
            "recommended_clauses": self.recommended_clauses(),
            "degraded": self.degraded,
            "recovered": self.recovered,
            "model_version": self.model_version,
            "arm": self.arm,
        }
        if self.id is not None:
            body["id"] = self.id
        return body

    @classmethod
    def from_full(cls, full, model_version: str = "0",
                  arm: str = "primary",
                  id: Optional[str] = None) -> "AdviceResult":
        """Build a result from a legacy ``FullAdvice`` (duck-typed: any
        object with ``directive``/``clauses``/``degraded``), attaching
        the operational context the legacy shape cannot carry."""
        directive = full.directive
        return cls(
            verdict=directive.needs_directive,
            probability=float(directive.probability),
            clauses=dict(full.clauses),
            degraded=full.degraded,
            recovered=getattr(directive, "recovered", False),
            model_version=model_version,
            arm=arm,
            id=id,
        )
