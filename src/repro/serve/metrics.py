"""First-class serving metrics: engine counters, batch histograms, merging.

Every layer of the serving stack reports through the types here:

* :class:`EngineStats` — monotonic counters kept by one
  :class:`~repro.serve.engine.InferenceEngine` (requests, cache hits and
  misses, LRU evictions, coalesced duplicates, model rows, and a
  power-of-two batch-size histogram).
* :func:`merge_stat_dicts` — fold the per-head or per-shard ``as_dict()``
  snapshots of many engines into one aggregate, used by
  :class:`~repro.serve.registry.MultiModelEngine` (one engine per model
  head) and :class:`~repro.serve.sharding.ShardedEngine` (one engine per
  worker process).
* :func:`batch_hist_bucket` — the shared histogram bucketing rule, exposed
  so the bench reporter and tests label buckets identically.
* :class:`RollingMean` — a fixed-size window over a load signal, used by
  :class:`~repro.serve.sharding.ShardedEngine`'s autoscaler to smooth
  per-call queue-depth and per-batch latency samples into a resize
  decision.
* :class:`ArmStats` / :func:`merge_arm_stats` — per-arm counters for a
  canary deployment (requests, errors, verdict agreement against the
  primary arm, latency), kept once for the primary arm and once for the
  canary arm by :class:`~repro.serve.registry.MultiModelEngine` and
  summed across worker processes by
  :class:`~repro.serve.sharding.ShardedEngine`.

Snapshots are plain ``dict``s with string keys throughout so they can go
straight into ``json.dumps`` for the ``/stats`` HTTP endpoint and the
``BENCH_serving.json`` perf reports.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable

__all__ = ["ArmStats", "EngineStats", "RollingMean", "batch_hist_bucket",
           "merge_arm_stats", "merge_engine_stats", "merge_stat_dicts"]


class RollingMean:
    """Thread-safe rolling window of float samples with an O(1) mean.

    The autoscaler's smoothing primitive: each serving call pushes one
    queue-depth sample, and resize decisions read the mean over the last
    ``window`` samples instead of reacting to a single spike.  ``full`` is
    the hysteresis gate — no decision is taken until the window has seen
    ``window`` fresh samples, and :meth:`clear` empties it after a resize
    so the next decision is based entirely on post-resize load.
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._lock = threading.Lock()
        self._samples: "deque[float]" = deque(maxlen=window)
        self._sum = 0.0

    def push(self, value: float) -> None:
        """Add one sample, dropping the oldest once the window is full."""
        with self._lock:
            if len(self._samples) == self.window:
                self._sum -= self._samples[0]
            self._samples.append(float(value))
            self._sum += float(value)

    def mean(self) -> float:
        """Mean over the current samples (0.0 when empty)."""
        with self._lock:
            if not self._samples:
                return 0.0
            return self._sum / len(self._samples)

    @property
    def full(self) -> bool:
        """True once ``window`` samples have accumulated since the last
        :meth:`clear` — the autoscaler's take-no-decision-yet gate."""
        with self._lock:
            return len(self._samples) == self.window

    def clear(self) -> None:
        """Forget every sample (called after a resize, for hysteresis)."""
        with self._lock:
            self._samples.clear()
            self._sum = 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


def batch_hist_bucket(rows: int) -> str:
    """Histogram label for a batch of ``rows`` forward rows.

    Buckets are powers of two — ``"1"``, ``"2"``, ``"3-4"``, ``"5-8"``,
    ``"9-16"``, … — so the histogram stays a handful of keys no matter how
    ``max_batch_size`` is tuned.
    """
    if rows <= 1:
        return "1"
    if rows == 2:
        return "2"
    hi = 4
    while rows > hi:
        hi *= 2
    return f"{hi // 2 + 1}-{hi}"


@dataclass
class EngineStats:
    """Monotonic counters for observability of one engine instance.

    ``cache_hits``/``cache_misses``/``evictions`` describe the prediction
    LRU; ``tokenized``/``encode_evictions`` the tokenize-once memo;
    ``coalesced`` counts duplicate rows inside one bulk call that were
    folded into a single forward row; ``batch_size_hist`` counts executed
    model batches by :func:`batch_hist_bucket` label.

    The dirty-input counters: ``recovered`` counts snippets whose lex
    needed error recovery but that were still answered by the model;
    ``rejected`` counts snippets answered with a neutral degraded verdict
    instead of model output, broken down by cause — ``rejected_oversize``
    (over the per-snippet byte cap), ``rejected_budget`` (lex/encode blew
    the time budget) and ``rejected_error`` (tokenizer raised).
    """

    requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    coalesced: int = 0
    batches: int = 0
    model_rows: int = 0
    tokenized: int = 0
    evictions: int = 0
    encode_evictions: int = 0
    recovered: int = 0
    rejected: int = 0
    rejected_oversize: int = 0
    rejected_budget: int = 0
    rejected_error: int = 0
    batch_size_hist: Dict[str, int] = field(default_factory=dict)

    def record_batch(self, rows: int) -> None:
        """Account one executed model batch of ``rows`` forward rows."""
        self.batches += 1
        self.model_rows += rows
        label = batch_hist_bucket(rows)
        self.batch_size_hist[label] = self.batch_size_hist.get(label, 0) + 1

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (the histogram is copied, not aliased)."""
        out: Dict[str, object] = dict(self.__dict__)
        out["batch_size_hist"] = dict(self.batch_size_hist)
        return out


@dataclass
class ArmStats:
    """Monotonic counters for one arm of a canary deployment.

    ``requests`` counts snippets the arm *served*; ``errors`` counts
    snippets whose inference on this arm raised (a canary-arm error falls
    back to the primary arm, so the request itself still succeeds).
    ``agreements``/``disagreements`` compare the canary arm's directive
    verdict against a shadow primary verdict for the same snippet — only
    the canary arm accumulates them.  ``latency_total_s`` over
    ``latency_samples`` is the arm's serving time per snippet (the sync
    bulk path records a batch's elapsed time against every row in it).

    Not internally locked — the owner (``MultiModelEngine``'s canary
    state) serializes updates.
    """

    requests: int = 0
    errors: int = 0
    agreements: int = 0
    disagreements: int = 0
    latency_total_s: float = 0.0
    latency_samples: int = 0

    def record_served(self, n: int, elapsed_s: float) -> None:
        """Account ``n`` snippets served in ``elapsed_s`` seconds."""
        self.requests += n
        self.latency_total_s += float(elapsed_s)
        self.latency_samples += n

    def record_agreements(self, agreed: Iterable[bool]) -> None:
        """Fold a batch of directive-verdict comparisons into the counters."""
        for ok in agreed:
            if ok:
                self.agreements += 1
            else:
                self.disagreements += 1

    @property
    def samples(self) -> int:
        """Outcomes a promotion policy can judge: served + errored."""
        return self.requests + self.errors

    def disagreement_rate(self) -> float:
        """Disagreements over compared verdicts (0.0 before any compare)."""
        compared = self.agreements + self.disagreements
        return self.disagreements / compared if compared else 0.0

    def error_rate(self) -> float:
        """Errors over policy samples (0.0 before any traffic)."""
        return self.errors / self.samples if self.samples else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot with the derived rates precomputed."""
        mean_ms = (1e3 * self.latency_total_s / self.latency_samples
                   if self.latency_samples else 0.0)
        return {
            "requests": self.requests,
            "errors": self.errors,
            "agreements": self.agreements,
            "disagreements": self.disagreements,
            "latency_total_s": round(self.latency_total_s, 6),
            "latency_samples": self.latency_samples,
            "latency_mean_ms": round(mean_ms, 3),
            "disagreement_rate": round(self.disagreement_rate(), 6),
            "error_rate": round(self.error_rate(), 6),
        }


def merge_arm_stats(snapshots: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Sum many :meth:`ArmStats.as_dict` snapshots into one aggregate.

    Base counters add; the derived rates (``latency_mean_ms``,
    ``disagreement_rate``, ``error_rate``) are recomputed from the summed
    counters rather than averaged, so shards with unequal traffic weigh in
    proportionally.  Used by ``ShardedEngine.stats`` to fold per-worker
    canary arms into one fleet-wide view.
    """
    merged = ArmStats()
    for snap in snapshots:
        merged.requests += int(snap.get("requests", 0))
        merged.errors += int(snap.get("errors", 0))
        merged.agreements += int(snap.get("agreements", 0))
        merged.disagreements += int(snap.get("disagreements", 0))
        merged.latency_total_s += float(snap.get("latency_total_s", 0.0))
        merged.latency_samples += int(snap.get("latency_samples", 0))
    return merged.as_dict()


def merge_stat_dicts(snapshots: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Sum many ``EngineStats.as_dict()`` snapshots into one aggregate.

    Integer counters add; ``batch_size_hist`` sub-dicts add per bucket.
    Unknown non-numeric keys are dropped rather than guessed at, so the
    merge stays safe across engine versions.
    """
    totals: Dict[str, object] = {}
    hist: Dict[str, int] = {}
    for snap in snapshots:
        for key, value in snap.items():
            if key == "batch_size_hist" and isinstance(value, dict):
                for bucket, count in value.items():
                    hist[bucket] = hist.get(bucket, 0) + int(count)
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                totals[key] = totals.get(key, 0) + value
    totals["batch_size_hist"] = hist
    return totals


def merge_engine_stats(stats: Iterable["EngineStats"]) -> Dict[str, object]:
    """Convenience: :func:`merge_stat_dicts` over live stats objects."""
    return merge_stat_dicts(s.as_dict() for s in stats)
