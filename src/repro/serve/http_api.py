"""Dependency-free HTTP front-end for the advisor service.

Built on stdlib :mod:`http.server` (``ThreadingHTTPServer``) so the repo
stays free of web-framework dependencies.  The server fronts any *advisor*
object exposing ``advise_full_many(codes)`` and ``stats()`` — in practice a
:class:`~repro.serve.registry.MultiModelEngine` or a
:class:`~repro.serve.sharding.ShardedEngine` wrapping one per worker.

Endpoints (all JSON; schemas and ``curl`` examples in ``docs/serving.md``):

* ``POST /advise`` — body ``{"code": "..."}``; replies with the combined
  directive + clause verdict (:meth:`FullAdvice.as_dict`).
* ``POST /advise/batch`` — body ``{"codes": [...]}`` or
  ``{"requests": [{"id": ..., "code": "..."}]}``; replies
  ``{"results": [...]}`` in request order, echoing ids when given.
  Invalid *items* (missing/empty/non-string code) get a per-item
  ``{"id", "error"}`` entry in the 200 reply instead of failing the
  whole batch; only body-structure problems answer 400.
* ``GET /healthz`` — liveness probe: ``{"status": "ok", "heads": [...]}``;
  answers ``503 {"status": "unhealthy"}`` when the advisor cannot list its
  heads (for a sharded advisor this round-trips a worker process).
* ``GET /stats`` — the advisor's live metrics snapshot plus HTTP-level
  request counters.
* ``POST /reload`` — hot-swap the advisor to a new checkpoint directory:
  body ``{"path": "advisor_ckpt/"}``, or an empty body to reload the
  server's default checkpoint directory (set by ``repro serve --watch`` /
  :func:`make_server`'s ``reload_dir``).  Replies with the new
  ``model_version``; ``501`` when the advisor cannot hot-reload, ``500``
  (old weights keep serving) when the checkpoint is bad.
* ``POST /canary`` — start a canary rollout: body
  ``{"path": "ckpt_v2/", "fraction": 0.1}`` routes the digest slice to
  the new checkpoint (``fraction`` defaults to 0.1).  Replies with the
  canary ``version``; ``409`` when a canary is already active, ``501``
  when the advisor cannot canary, ``500`` (primary untouched) when the
  checkpoint is bad.  Watch the per-arm counters under ``canary`` in
  ``GET /stats``, then finish with ``POST /canary/promote`` (replies
  with the promoted ``model_version``) or ``POST /canary/rollback`` —
  both take no body and answer ``409`` with no canary active.

Every endpoint is also mounted under the ``/v1/`` prefix (``/v1/advise``,
``/v1/advise/batch``, ``/v1/reload``, ``/v1/canary*``, ``/v1/healthz``,
``/v1/stats``); the bare paths above are the legacy aliases.  ``POST
/v1/advise`` and ``/advise/batch`` (both spellings) answer the v1 result
schema — :meth:`repro.serve.api.AdviceResult.as_dict`, a strict superset
of the legacy shape that adds ``degraded`` / ``recovered`` /
``model_version`` / ``arm`` — while legacy ``POST /advise`` keeps the
legacy shape.  ``GET /stats`` reports ``schema_version`` (see
:data:`repro.serve.api.SCHEMA_VERSION`) so clients can detect the
surface.

Malformed requests get ``400`` with ``{"error": ...}``; unknown paths
``404``; the serving loop never dies on a bad request.  Bodies that are
not valid UTF-8 are re-decoded with replacement characters when the bad
bytes sit inside JSON string values (the robust lexer downstream treats
U+FFFD like any other dirty byte) and answered with a structured ``400``
when they corrupt the JSON framing — either way the ``invalid_body``
counter in the ``/stats`` admission block ticks.  **Admission
control** (:class:`AdmissionConfig`) protects the advisor behind the
endpoints: oversized bodies are rejected with ``413`` before they are
read, batches above the snippet cap with ``400``, traffic beyond the
in-flight limit is shed with ``429`` + ``Retry-After``, and a circuit
breaker answers ``503`` while the fleet is rebuilding after consecutive
inference failures (half-open probes after the cooldown re-close it).
``/healthz`` and ``/stats`` bypass admission — observability must keep
working exactly when the service is shedding.  Start the server from the
CLI with ``repro serve --http PORT`` or programmatically via
:func:`make_server` / :func:`serve_forever`.  The operator's guide to the
lifecycle (probing, reload, autoscaling, failure modes) is
``docs/operations.md``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

__all__ = ["AdmissionConfig", "AdvisorHTTPServer", "make_server",
           "serve_forever"]

#: Largest accepted request body (bytes) — snippets are loop nests, not
#: whole programs; an oversized body gets a 413 instead of an allocation.
MAX_BODY_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission-control knobs for :class:`AdvisorHTTPServer`.

    Requests are refused *before* they cost inference capacity:

    * ``max_body_bytes`` — request bodies above this are answered ``413``
      without being read.
    * ``max_batch_snippets`` — ``/advise/batch`` requests with more
      snippets are answered ``400``; one batch must not monopolize the
      fleet.
    * ``max_inflight`` — serving requests (``/advise``,
      ``/advise/batch``) already being processed; beyond it new ones are
      *shed* with ``429`` and a ``Retry-After: retry_after_s`` header
      instead of queueing into a latency collapse.
    * ``breaker_threshold`` — consecutive inference failures that open
      the circuit breaker; while open, serving requests are answered
      ``503`` immediately.  After ``breaker_cooldown_s`` the breaker
      goes *half-open*: requests flow again, the first success closes it
      and the next failure re-opens it — probing the fleet without
      stampeding it mid-rebuild.
    """

    max_body_bytes: int = MAX_BODY_BYTES
    max_batch_snippets: int = 400
    max_inflight: int = 64
    retry_after_s: float = 1.0
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        if self.max_batch_snippets < 1:
            raise ValueError("max_batch_snippets must be >= 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.retry_after_s <= 0:
            raise ValueError("retry_after_s must be > 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_s <= 0:
            raise ValueError("breaker_cooldown_s must be > 0")


class AdvisorHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server owning the advisor, request counters, and the
    admission-control state (in-flight gauge + circuit breaker)."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], advisor,
                 reload_dir: Optional[str] = None,
                 admission: Optional[AdmissionConfig] = None) -> None:
        super().__init__(address, _AdvisorHandler)
        self.advisor = advisor
        #: default checkpoint directory for body-less ``POST /reload``
        self.reload_dir = str(reload_dir) if reload_dir is not None else None
        #: admission-control knobs; defaults apply when not given
        self.admission = (admission if admission is not None
                          else AdmissionConfig())
        self._counter_lock = threading.Lock()
        self._inflight = 0
        self._invalid_body = 0
        self._breaker_failures = 0
        self._breaker_open_until = 0.0
        self.http_requests: Dict[str, int] = {
            "advise": 0, "advise_batch": 0, "healthz": 0, "stats": 0,
            "reload": 0, "canary": 0, "canary_promote": 0,
            "canary_rollback": 0, "errors": 0, "shed": 0,
            "breaker_rejected": 0,
        }

    def bump(self, key: str) -> None:
        """Increment one request counter (handler threads run concurrently,
        and ``dict[k] += 1`` is a lost-update race without the lock)."""
        with self._counter_lock:
            self.http_requests[key] += 1

    def counters(self) -> Dict[str, int]:
        """Consistent snapshot of the request counters."""
        with self._counter_lock:
            return dict(self.http_requests)

    # -- admission control -------------------------------------------------

    def try_acquire(self) -> bool:
        """Claim one in-flight serving slot; ``False`` means shed (429).
        Every ``True`` must be paired with a :meth:`release`."""
        with self._counter_lock:
            if self._inflight >= self.admission.max_inflight:
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        """Return an in-flight serving slot claimed by :meth:`try_acquire`."""
        with self._counter_lock:
            self._inflight -= 1

    def record_invalid_body(self) -> None:
        """Count one request body that failed strict UTF-8 decoding —
        whether it was salvaged with replacement characters or rejected."""
        with self._counter_lock:
            self._invalid_body += 1

    def breaker_allows(self) -> bool:
        """Whether the circuit breaker admits serving traffic right now
        (closed, or half-open after the cooldown)."""
        with self._counter_lock:
            return time.monotonic() >= self._breaker_open_until

    def record_outcome(self, ok: bool) -> None:
        """Feed one inference outcome to the circuit breaker: a success
        closes it, ``breaker_threshold`` consecutive failures open it for
        ``breaker_cooldown_s``."""
        with self._counter_lock:
            if ok:
                self._breaker_failures = 0
                self._breaker_open_until = 0.0
            else:
                self._breaker_failures += 1
                if self._breaker_failures >= self.admission.breaker_threshold:
                    self._breaker_open_until = (
                        time.monotonic() + self.admission.breaker_cooldown_s)

    def admission_stats(self) -> Dict[str, object]:
        """JSON-ready admission snapshot for ``/stats``."""
        with self._counter_lock:
            return {
                "max_inflight": self.admission.max_inflight,
                "inflight": self._inflight,
                "max_batch_snippets": self.admission.max_batch_snippets,
                "max_body_bytes": self.admission.max_body_bytes,
                "invalid_body": self._invalid_body,
                "breaker_failures": self._breaker_failures,
                "breaker_open": time.monotonic() < self._breaker_open_until,
            }


class _AdvisorHandler(BaseHTTPRequestHandler):
    """Request handler: routes the four endpoints, JSON in/out."""

    server_version = "repro-advisor/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr chatter; /stats is the observability
        surface."""

    def _send_json(self, status: int, payload: Dict,
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str,
               headers: Optional[Dict[str, str]] = None) -> None:
        self.server.bump("errors")
        # error paths may leave an unread request body on the keep-alive
        # socket; closing the connection stops it being parsed as the next
        # request line
        self.close_connection = True
        self._send_json(status, {"error": message}, headers=headers)

    def _admit(self) -> bool:
        """Admission gate for the serving endpoints (``/advise``,
        ``/advise/batch``): circuit breaker first (503 while the fleet is
        rebuilding), then the in-flight cap (429 + ``Retry-After``, the
        request is *shed*).  ``True`` claims an in-flight slot the caller
        must :meth:`AdvisorHTTPServer.release` when done."""
        server = self.server
        retry_after = {"Retry-After":
                       str(max(1, round(server.admission.retry_after_s)))}
        if not server.breaker_allows():
            server.bump("breaker_rejected")
            self._error(503, "circuit breaker open after consecutive "
                             "inference failures; retry shortly",
                        headers=retry_after)
            return False
        if not server.try_acquire():
            server.bump("shed")
            self._error(429, "server at capacity; request shed, retry "
                             "shortly", headers=retry_after)
            return False
        return True

    def _read_body(self) -> Optional[Dict]:
        """Parse the JSON request body; replies with the right 4xx and
        returns ``None`` on any malformation.

        Undecodable bytes are tolerated when they are confined to JSON
        string values: the body is re-decoded with ``errors="replace"``
        and the snippet reaches the (error-recovering) lexer with U+FFFD
        where the bad bytes were.  Bytes that corrupt the JSON framing
        itself get a structured ``400``, never a stack trace.  Either way
        the ``invalid_body`` admission counter ticks."""
        limit = self.server.admission.max_body_bytes
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._error(400, "invalid Content-Length")
            return None
        if length <= 0:
            self._error(400, "request body required")
            return None
        if length > limit:
            self._error(413, f"body exceeds {limit} bytes")
            return None
        raw = self.rfile.read(length)
        try:
            text = raw.decode("utf-8")
            undecodable = False
        except UnicodeDecodeError:
            self.server.record_invalid_body()
            text = raw.decode("utf-8", errors="replace")
            undecodable = True
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            if undecodable:
                self._error(400, "request body is not valid UTF-8")
            else:
                self._error(400, f"invalid JSON body: {exc}")
            return None
        if not isinstance(payload, dict):
            self._error(400, "JSON body must be an object")
            return None
        return payload

    # -- GET ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        """Route ``/healthz`` and ``/stats`` (bare or ``/v1/``-prefixed —
        the GET surface is identical on both)."""
        path = _strip_v1(self.path)
        if path == "/healthz":
            self.server.bump("healthz")
            heads = []
            names = getattr(self.server.advisor, "head_names", None)
            if callable(names):
                try:  # works for MultiModelEngine and ShardedEngine alike;
                    # for a sharded advisor this round-trips a worker, so a
                    # dead fleet fails the probe instead of looking healthy
                    heads = list(names())
                except Exception as exc:  # noqa: BLE001 — report unhealthy
                    self._send_json(503, {"status": "unhealthy",
                                          "error": str(exc)})
                    return
            self._send_json(200, {"status": "ok", "heads": heads})
        elif path == "/stats":
            self.server.bump("stats")
            try:
                stats = self.server.advisor.stats()
            except Exception as exc:  # noqa: BLE001 — report, don't die
                self._error(500, f"stats failed: {exc}")
                return
            from repro.serve.api import SCHEMA_VERSION
            self._send_json(200, {"schema_version": SCHEMA_VERSION,
                                  "http": self.server.counters(),
                                  "admission": self.server.admission_stats(),
                                  "engine": stats})
        else:
            self._error(404, f"unknown path {self.path!r}")

    # -- POST --------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        """Route ``/advise``, ``/advise/batch``, ``/reload``, and the
        ``/canary`` lifecycle — bare (legacy) or ``/v1/``-prefixed.  Only
        single-snippet advice differs between the two: ``/v1/advise``
        answers the v1 result schema, the legacy alias keeps the legacy
        shape (batch answers the v1 schema on both spellings — it is a
        strict superset, so legacy clients keep parsing)."""
        v1 = self.path != _strip_v1(self.path)
        path = _strip_v1(self.path)
        if path == "/advise":
            self._handle_advise(v1=v1)
        elif path == "/advise/batch":
            self._handle_advise_batch()
        elif path == "/reload":
            self._handle_reload()
        elif path == "/canary":
            self._handle_canary_start()
        elif path == "/canary/promote":
            self._handle_canary_finish("promote", "canary_promote")
        elif path == "/canary/rollback":
            self._handle_canary_finish("rollback", "canary_rollback")
        else:
            self._error(404, f"unknown path {self.path!r}")

    def _handle_advise(self, v1: bool = False) -> None:
        if not self._admit():
            return
        try:
            payload = self._read_body()
            if payload is None:
                return
            code = payload.get("code")
            if not isinstance(code, str) or not code.strip():
                self._error(400,
                            "request needs a non-empty string 'code' field")
                return
            self.server.bump("advise")
            try:
                if v1:
                    advice = _advise_v1(self.server.advisor, [code],
                                        [payload.get("id")])[0]
                else:
                    # the legacy path prefers async micro-batching:
                    # concurrent handler threads enqueue on the per-head
                    # submit() queues and their snippets coalesce into
                    # shared forward passes, instead of each request
                    # running its own batch-of-1 (advisors without the
                    # async surface, e.g. ShardedEngine, fall back to the
                    # bulk call)
                    advise_async = getattr(self.server.advisor,
                                           "advise_full_async", None)
                    if advise_async is not None:
                        advice = advise_async(code)
                    else:
                        advice = self.server.advisor.advise_full_many(
                            [code])[0]
            except Exception as exc:  # noqa: BLE001 — report, don't die
                self.server.record_outcome(False)
                self._error(500, f"inference failed: {exc}")
                return
            self.server.record_outcome(True)
            self._send_json(200, advice.as_dict())
        finally:
            self.server.release()

    def _handle_reload(self) -> None:
        """Hot-swap the advisor's checkpoint (``POST /reload``).

        ``{"path": ...}`` selects the checkpoint directory; an empty body
        falls back to the server's ``reload_dir``.  On success the reply
        carries the new ``model_version``; on failure the advisor keeps
        serving the old weights and the error says why.
        """
        path = self.server.reload_dir
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            self._error(400, "invalid Content-Length")
            return
        if length > 0:
            payload = self._read_body()
            if payload is None:
                return
            path = payload.get("path", path)
        if not isinstance(path, str) or not path:
            self._error(400, "no checkpoint: POST {\"path\": ...} or start "
                             "the server with a reload/watch directory")
            return
        reload_fn = getattr(self.server.advisor, "reload", None)
        if reload_fn is None:
            self._error(501, "advisor does not support hot reload")
            return
        self.server.bump("reload")
        try:
            version = reload_fn(path)
        except Exception as exc:  # noqa: BLE001 — old weights keep serving
            self._error(500, f"reload failed: {exc}")
            return
        self._send_json(200, {"status": "reloaded", "path": path,
                              "model_version": version})

    def _handle_canary_start(self) -> None:
        """Start a canary rollout (``POST /canary``).

        Body: ``{"path": "ckpt/", "fraction": 0.1}`` — ``path`` is
        required, ``fraction`` defaults to 0.1 and must be in (0, 1].
        ``409`` when a canary is already active; on a bad checkpoint the
        primary keeps serving all traffic and the reply is ``500``.
        """
        payload = self._read_body()
        if payload is None:
            return
        path = payload.get("path")
        if not isinstance(path, str) or not path:
            self._error(400, "request needs a non-empty string 'path' field")
            return
        fraction = payload.get("fraction", 0.1)
        if (isinstance(fraction, bool) or not isinstance(fraction, (int, float))
                or not 0.0 < float(fraction) <= 1.0):
            self._error(400, "'fraction' must be a number in (0, 1]")
            return
        start = getattr(self.server.advisor, "start_canary", None)
        if start is None:
            self._error(501, "advisor does not support canary rollouts")
            return
        self.server.bump("canary")
        try:
            version = start(path, float(fraction))
        except RuntimeError as exc:  # a canary is already rolling out
            self._error(409, str(exc))
            return
        except Exception as exc:  # noqa: BLE001 — primary keeps serving
            self._error(500, f"canary failed to start: {exc}")
            return
        self._send_json(200, {"status": "canary-started", "path": path,
                              "fraction": float(fraction),
                              "version": version})

    def _handle_canary_finish(self, action: str, counter: str) -> None:
        """Finish a canary rollout (``POST /canary/promote|rollback``).

        No body required.  ``409`` with no canary active; ``501`` when
        the advisor has no canary surface.
        """
        fn = getattr(self.server.advisor, action, None)
        if fn is None:
            self._error(501, "advisor does not support canary rollouts")
            return
        self.server.bump(counter)
        try:
            result = fn()
        except RuntimeError as exc:  # no canary active / partial fleet
            self._error(409, str(exc))
            return
        except Exception as exc:  # noqa: BLE001 — report, don't die
            self._error(500, f"canary {action} failed: {exc}")
            return
        if action == "promote":
            self._send_json(200, {"status": "promoted",
                                  "model_version": result})
        else:
            self._send_json(200, {"status": "rolled-back"})

    def _handle_advise_batch(self) -> None:
        if not self._admit():
            return
        try:
            payload = self._read_body()
            if payload is None:
                return
            items = self._parse_batch(payload)
            if items is None:
                return
            cap = self.server.admission.max_batch_snippets
            if len(items) > cap:
                self._error(400, f"batch of {len(items)} snippets exceeds "
                                 f"the {cap}-snippet cap; split the request")
                return
            self.server.bump("advise_batch")
            good = [(i, code) for i, (_, code, err) in enumerate(items)
                    if err is None]
            advices: List = []
            if good:
                try:
                    # batch answers the v1 result schema on both the
                    # legacy and the /v1/ spelling: it is a strict
                    # superset of the legacy shape
                    advices = _advise_v1(
                        self.server.advisor,
                        [code for _, code in good],
                        [items[i][0] for i, _ in good])
                except Exception as exc:  # noqa: BLE001 — report, don't die
                    self.server.record_outcome(False)
                    self._error(500, f"inference failed: {exc}")
                    return
                self.server.record_outcome(True)
            advice_at = {i: adv for (i, _), adv in zip(good, advices)}
            results = []
            for i, (rid, _, err) in enumerate(items):
                if err is not None:
                    results.append({"id": rid, "error": err})
                else:
                    body = advice_at[i].as_dict()
                    body["id"] = rid
                    results.append(body)
            self._send_json(200, {"results": results})
        finally:
            self.server.release()

    def _parse_batch(self, payload: Dict):
        """``{"codes": [...]}`` or ``{"requests": [{"id","code"}]}`` ->
        list of ``(id, code, error)`` triples, one per requested snippet,
        with exactly one of ``code``/``error`` set.

        Body-*structure* problems (missing list, wrong container types)
        reply 400 and return ``None``; per-*item* problems (missing,
        empty, or non-string code) become error triples, so one dirty
        snippet costs itself an ``{"id", "error"}`` entry in the 200
        reply instead of rejecting its whole batch."""
        item_error = "needs a non-empty string 'code'"
        if "codes" in payload:
            codes = payload["codes"]
            if not isinstance(codes, list):
                self._error(400, "'codes' must be a list of strings")
                return None
            return [(i, code, None)
                    if isinstance(code, str) and code.strip()
                    else (i, None, item_error)
                    for i, code in enumerate(codes)]
        requests = payload.get("requests")
        if not isinstance(requests, list):
            self._error(400, "body needs a 'codes' or 'requests' list")
            return None
        items: List = []
        for i, req in enumerate(requests):
            if not isinstance(req, dict):
                self._error(400, f"requests[{i}] must be an object")
                return None
            code = req.get("code")
            if isinstance(code, str) and code.strip():
                items.append((req.get("id", i), code, None))
            else:
                items.append((req.get("id", i), None, item_error))
        return items


def _strip_v1(path: str) -> str:
    """Normalize a ``/v1/``-prefixed path to its legacy spelling (the
    router matches on legacy paths; the prefix only selects the v1
    response schema where the two differ)."""
    if path == "/v1" or path.startswith("/v1/"):
        return path[len("/v1"):] or "/"
    return path


def _advise_v1(advisor, codes: List[str], ids: List) -> List:
    """v1 results from any advisor: its own ``advise_v1`` when it has one
    (:class:`~repro.serve.registry.MultiModelEngine` and
    :class:`~repro.serve.sharding.ShardedEngine` both do), else legacy
    ``advise_full_many`` wrapped into :class:`~repro.serve.api.AdviceResult`
    with default operational context — the HTTP surface answers the v1
    schema even for bare-bones advisors."""
    from repro.serve.api import AdviceRequest, AdviceResult

    advise_v1 = getattr(advisor, "advise_v1", None)
    if advise_v1 is not None:
        return advise_v1([AdviceRequest(code=code, id=rid)
                          for code, rid in zip(codes, ids)])
    fulls = advisor.advise_full_many(codes)
    version = str(getattr(advisor, "model_version", "0"))
    # duck-typed advisors (embedder stubs) may return bare objects with
    # just as_dict(); pass those through in their legacy shape rather
    # than 500 on the missing operational context
    return [AdviceResult.from_full(full, model_version=version, id=rid)
            if hasattr(full, "directive") else full
            for full, rid in zip(fulls, ids)]


def make_server(advisor, host: str = "127.0.0.1", port: int = 0,
                reload_dir: Optional[str] = None,
                admission: Optional[AdmissionConfig] = None,
                ) -> AdvisorHTTPServer:
    """Bind an :class:`AdvisorHTTPServer` (``port=0`` = ephemeral) without
    starting it — callers drive ``serve_forever``/``shutdown`` themselves
    (tests run it on a thread).  ``reload_dir`` is the default checkpoint
    directory a body-less ``POST /reload`` falls back to; ``admission``
    overrides the default :class:`AdmissionConfig`."""
    return AdvisorHTTPServer((host, port), advisor, reload_dir=reload_dir,
                             admission=admission)


#: Sentinel for ``serve_forever(watch_baseline=...)``: let the watcher
#: stat the manifest itself at construction time.
_BASELINE_UNSET = object()


def serve_forever(advisor, host: str, port: int, banner: bool = True,
                  watch_dir: Optional[str] = None,
                  watch_interval: float = 2.0,
                  watch_baseline=_BASELINE_UNSET,
                  admission: Optional[AdmissionConfig] = None) -> None:
    """Blocking convenience loop for the CLI: bind, announce, serve until
    interrupted, then close the advisor.

    With ``watch_dir`` set, a
    :class:`~repro.serve.registry.CheckpointWatcher` polls that advisor
    checkpoint directory every ``watch_interval`` seconds and hot-reloads
    the advisor when a new checkpoint lands; the directory also becomes
    the default for body-less ``POST /reload``.  ``watch_baseline`` is
    the manifest mtime the advisor was loaded from (capture it *before*
    loading, see :func:`repro.serve.registry.checkpoint_mtime`) so a
    checkpoint landing during the load window is still reloaded; by
    default the watcher baselines at construction.  ``admission``
    overrides the default :class:`AdmissionConfig` (the CLI's
    ``--max-body-bytes`` plumbs through here).
    """
    from repro.serve.registry import CheckpointWatcher

    server = make_server(advisor, host, port, reload_dir=watch_dir,
                         admission=admission)
    watcher = None
    if watch_dir is not None:
        kwargs = ({} if watch_baseline is _BASELINE_UNSET
                  else {"baseline_mtime": watch_baseline})
        watcher = CheckpointWatcher(advisor, watch_dir,
                                    interval=watch_interval, **kwargs).start()
    bound_host, bound_port = server.server_address[:2]
    if banner:
        watching = f", watching {watch_dir}" if watch_dir is not None else ""
        print(f"advisor listening on http://{bound_host}:{bound_port} "
              f"(POST /advise, POST /advise/batch, POST /reload, "
              f"POST /canary[/promote|/rollback], "
              f"GET /healthz, GET /stats — all also under /v1/"
              f"{watching})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover — interactive exit
        pass
    finally:
        if watcher is not None:
            watcher.stop()
        server.server_close()
        close = getattr(advisor, "close", None)
        if close is not None:
            close()
