"""Multi-worker sharding: partition bulk advisor traffic across processes.

The NumPy engine is single-process compute-bound, so past one core the only
way to scale throughput is more processes.  :class:`ShardedEngine` runs N
worker processes (stdlib :mod:`multiprocessing`, no extra deps), each
hosting its own engine built by a caller-supplied zero-argument factory:

* **Digest-hash routing** — a snippet is routed by
  ``blake2b(code) % n_shards``, so the *same* snippet always lands on the
  *same* worker and that worker's prediction LRU and tokenize memo stay hot
  (random routing would cut every cache's effective hit rate by 1/N).
* **Bulk fan-out** — one :meth:`predict_proba` / :meth:`advise_full_many`
  call splits its codes by shard, sends each worker one sub-batch, and the
  workers run concurrently; results are scattered back into request order.
* **Concurrent callers** — replies are tagged with request ids, so multiple
  threads (e.g. HTTP handler threads) can have calls in flight at once;
  calls touching disjoint shards proceed fully in parallel.
* **Graceful fallback** — ``n_shards=1`` builds the engine in-process and
  skips multiprocessing entirely (same API, zero IPC overhead), so callers
  can treat the shard count as a pure tuning knob.
* **Observability** — :meth:`stats` aggregates every worker's engine
  counters and reports per-shard routed-request counts and live queue
  depths (requests sent but not yet answered).

Workers are started with the ``fork`` start method when the platform
offers it (the factory may close over live models — fork shares their
memory copy-on-write); otherwise ``spawn`` is used and the factory must be
picklable (a module-level function or :func:`functools.partial` of one).
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import queue as queue_mod
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.engine import Advice, source_digest
from repro.serve.metrics import merge_stat_dicts

__all__ = ["ShardedEngine", "shard_of", "snapshot_stats"]

_STOP = "stop"


def shard_of(code: str, n_shards: int) -> int:
    """Deterministic shard index for a snippet.

    Keyed on a blake2b digest of the source text — stable across processes
    and runs (unlike ``hash()``, which is salted per process), so a given
    snippet always hits the same shard's warm caches.
    """
    return int.from_bytes(source_digest(code, size=8), "big") % n_shards


def snapshot_stats(engine) -> Dict[str, object]:
    """Engine-agnostic stats snapshot: supports the single-head
    ``engine.stats`` (an ``EngineStats``), ``MultiModelEngine.stats()``,
    and ``ShardedEngine.stats()`` alike.  The one helper shared by the
    worker loop and the CLI's ``--stats`` dump."""
    stats = getattr(engine, "stats", None)
    if callable(stats):
        return stats()
    if stats is not None:
        return stats.as_dict()
    return {}


def _head_names(engine) -> List[str]:
    """Engine-agnostic model-head listing (empty for single-model engines)."""
    names = getattr(engine, "head_names", None)
    if callable(names):
        return list(names())
    return []


def _worker_main(factory, requests, responses) -> None:
    """Worker loop: build the engine once, then serve method calls.

    Messages are ``(rid, method, payload)`` tuples; replies are
    ``(rid, "ok", result)`` or ``(rid, "error", repr)`` — the echoed
    request id lets concurrent parent threads pair replies with their own
    requests, and a worker-side exception surfaces in the caller instead
    of hanging the shard.
    """
    engine = factory()
    try:
        while True:
            msg = requests.get()
            if msg == _STOP:
                return
            rid, method, payload = msg
            try:
                if method == "stats":
                    result = snapshot_stats(engine)
                elif method == "heads":
                    result = _head_names(engine)
                else:
                    result = getattr(engine, method)(payload)
                responses.put((rid, "ok", result))
            except Exception as exc:  # noqa: BLE001 — relayed to the caller
                responses.put((rid, "error", f"{type(exc).__name__}: {exc}"))
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()


class ShardedEngine:
    """Bulk advisor traffic partitioned across N single-engine workers.

    ``factory`` builds one engine per worker (an
    :class:`~repro.serve.engine.InferenceEngine`, a
    :class:`~repro.serve.registry.MultiModelEngine`, or anything exposing
    the same bulk methods).  All bulk calls (:meth:`predict_proba`,
    :meth:`advise_many`, :meth:`advise_full_many`) route per snippet by
    :func:`shard_of` and preserve request order in the returned results.

    Thread-safe: replies carry request ids, so concurrent bulk calls (e.g.
    HTTP handler threads) run in parallel — per shard, whichever caller is
    reading stores any reply that is not its own for the thread it belongs
    to; calls on disjoint shards never contend.
    """

    def __init__(
        self,
        factory: Callable[[], object],
        n_shards: int = 1,
        mp_context: Optional[str] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.routed = [0] * n_shards      # requests routed per shard, ever
        self._depth = [0] * n_shards      # sub-batches in flight per shard
        self._meta_lock = threading.Lock()   # routed/_depth/request ids
        self._rids = itertools.count()
        self._local = None
        self._workers: List[mp.Process] = []
        self._requests: List[mp.queues.Queue] = []
        self._responses: List[mp.queues.Queue] = []
        self._closed = False
        if n_shards == 1:
            # in-process fallback: same API, no IPC, no extra processes
            self._local = factory()
            return
        # reply plumbing: one reader at a time per shard; replies that
        # belong to another thread's request are parked in _pending
        self._recv_locks = [threading.Lock() for _ in range(n_shards)]
        self._pending_locks = [threading.Lock() for _ in range(n_shards)]
        self._pending: List[Dict[int, Tuple[str, object]]] = [
            {} for _ in range(n_shards)]
        if mp_context is None:
            mp_context = ("fork" if "fork" in mp.get_all_start_methods()
                          else "spawn")
        ctx = mp.get_context(mp_context)
        for shard in range(n_shards):
            req: "mp.queues.Queue" = ctx.Queue()
            resp: "mp.queues.Queue" = ctx.Queue()
            proc = ctx.Process(target=_worker_main, args=(factory, req, resp),
                               name=f"advisor-shard-{shard}", daemon=True)
            proc.start()
            self._workers.append(proc)
            self._requests.append(req)
            self._responses.append(resp)

    # -- routing -----------------------------------------------------------

    def shard_of(self, code: str) -> int:
        """Shard index this engine routes ``code`` to."""
        return shard_of(code, self.n_shards)

    # -- worker IPC --------------------------------------------------------

    def _send(self, shard: int, method: str, payload) -> int:
        """Enqueue one request on ``shard``; returns its request id."""
        if self._closed:
            raise RuntimeError("sharded engine is closed")
        with self._meta_lock:
            rid = next(self._rids)
            self._depth[shard] += 1
        self._requests[shard].put((rid, method, payload))
        return rid

    def _collect(self, shard: int, rid: int) -> Tuple[str, object]:
        """Wait for the reply to ``rid``, parking other threads' replies.

        Raises ``RuntimeError`` if the worker dies before answering."""
        try:
            while True:
                with self._pending_locks[shard]:
                    if rid in self._pending[shard]:
                        return self._pending[shard].pop(rid)
                with self._recv_locks[shard]:
                    # ours may have been parked while we waited for the lock
                    with self._pending_locks[shard]:
                        if rid in self._pending[shard]:
                            return self._pending[shard].pop(rid)
                    got_rid, status, result = self._reply(shard)
                    if got_rid == rid:
                        return status, result
                    with self._pending_locks[shard]:
                        self._pending[shard][got_rid] = (status, result)
        finally:
            with self._meta_lock:
                self._depth[shard] -= 1

    def _reply(self, shard: int):
        """Next raw reply from ``shard``, without hanging on a dead worker.

        Polls with a short timeout and, between polls, checks the worker is
        still alive — a factory that crashes at startup or a worker killed
        mid-request must surface as an error, not wedge callers forever."""
        while True:
            try:
                return self._responses[shard].get(timeout=1.0)
            except queue_mod.Empty:
                if not self._workers[shard].is_alive():
                    try:  # a final reply may still be in the queue's pipe
                        return self._responses[shard].get(timeout=1.0)
                    except queue_mod.Empty:
                        raise RuntimeError(
                            f"shard {shard} worker died (exitcode "
                            f"{self._workers[shard].exitcode})") from None

    def _scatter_call(self, method: str, codes: Sequence[str]) -> List:
        """Fan ``codes`` out by shard, run ``method`` on each worker's
        sub-batch concurrently, and gather results back in request order."""
        if self._closed:
            raise RuntimeError("sharded engine is closed")
        if self._local is not None:
            with self._meta_lock:  # routed[] is read-modify-write
                self.routed[0] += len(codes)
            return list(getattr(self._local, method)(list(codes)))
        by_shard: Dict[int, List[int]] = {}
        for i, code in enumerate(codes):
            by_shard.setdefault(self.shard_of(code), []).append(i)
        # send every sub-batch before collecting any reply: workers overlap
        rids: Dict[int, int] = {}
        for shard, rows in by_shard.items():
            with self._meta_lock:
                self.routed[shard] += len(rows)
            rids[shard] = self._send(shard, method, [codes[i] for i in rows])
        out: List = [None] * len(codes)
        failures: List[str] = []
        for shard, rows in by_shard.items():
            try:
                status, result = self._collect(shard, rids[shard])
            except RuntimeError as exc:
                failures.append(str(exc))
                continue
            if status != "ok":
                failures.append(f"shard {shard} failed: {result}")
                continue
            for i, value in zip(rows, result):
                out[i] = value
        if failures:
            raise RuntimeError("; ".join(failures))
        return out

    # -- bulk APIs ---------------------------------------------------------

    def predict_proba(self, codes: Sequence[str]) -> np.ndarray:
        """(N, 2) directive probabilities, sharded and order-preserving."""
        rows = self._scatter_call("predict_proba", codes)
        if not rows:
            return np.empty((0, 2))
        return np.stack([np.asarray(row) for row in rows])

    def advise_many(self, codes: Sequence[str]) -> List[Advice]:
        """Bulk directive advice across shards."""
        return self._scatter_call("advise_many", codes)

    def advise(self, code: str) -> Advice:
        """Single-snippet directive advice (routed like any other)."""
        return self.advise_many([code])[0]

    def advise_full_many(self, codes: Sequence[str]) -> List:
        """Bulk combined directive+clause advice (workers must host a
        :class:`~repro.serve.registry.MultiModelEngine`)."""
        return self._scatter_call("advise_full_many", codes)

    def advise_full(self, code: str):
        """Single-snippet combined advice."""
        return self.advise_full_many([code])[0]

    # -- observability -----------------------------------------------------

    def head_names(self) -> List[str]:
        """Model heads hosted by the workers (asked of shard 0 — every
        worker is built by the same factory); empty for single-model
        engines."""
        if self._local is not None:
            return _head_names(self._local)
        status, result = self._collect(0, self._send(0, "heads", None))
        if status != "ok":
            raise RuntimeError(f"shard 0 failed: {result}")
        return result

    def queue_depth(self) -> List[int]:
        """Per-shard count of requests sent but not yet answered."""
        with self._meta_lock:
            return list(self._depth)

    def stats(self) -> Dict[str, object]:
        """Aggregate + per-shard serving metrics.

        Shape: ``{"n_shards", "routed": [per-shard request counts],
        "queue_depth": [in-flight requests], "shards": [per-worker
        engine snapshots], "combined": merged counters}`` — JSON-ready.
        """
        if self._local is not None:
            shards = [snapshot_stats(self._local)]
        else:
            shards = self._scatter_stats()
        flat = [s.get("combined", s) if isinstance(s, dict) else s
                for s in shards]
        with self._meta_lock:
            routed = list(self.routed)
        return {
            "n_shards": self.n_shards,
            "routed": routed,
            "queue_depth": self.queue_depth(),
            "shards": shards,
            "combined": merge_stat_dicts(
                f for f in flat if isinstance(f, dict)),
        }

    def _scatter_stats(self) -> List[Dict[str, object]]:
        rids = [self._send(shard, "stats", None)
                for shard in range(self.n_shards)]
        replies = []
        for shard, rid in enumerate(rids):
            try:  # collect every live shard even if one died
                replies.append(self._collect(shard, rid))
            except RuntimeError as exc:
                replies.append(("error", str(exc)))
        snapshots = []
        for shard, (status, result) in enumerate(replies):
            if status != "ok":
                raise RuntimeError(f"shard {shard} failed: {result}")
            snapshots.append(result)
        return snapshots

    # -- lifecycle ---------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Stop all workers (idempotent); the engine is unusable after."""
        if self._closed:
            return
        self._closed = True
        if self._local is not None:
            close = getattr(self._local, "close", None)
            if close is not None:
                close()
            return
        for req in self._requests:
            req.put(_STOP)
        for proc in self._workers:
            proc.join(timeout=timeout)
            if proc.is_alive():  # pragma: no cover — stuck worker
                proc.terminate()
        for q in (*self._requests, *self._responses):
            q.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
