"""Multi-worker sharding: partition bulk advisor traffic across processes.

The NumPy engine is single-process compute-bound, so past one core the only
way to scale throughput is more processes.  :class:`ShardedEngine` runs N
worker processes (stdlib :mod:`multiprocessing`, no extra deps), each
hosting its own engine built by a caller-supplied zero-argument factory:

* **Digest-hash routing** — a snippet is routed by
  ``blake2b(code) % n_shards``, so the *same* snippet always lands on the
  *same* worker and that worker's prediction LRU and tokenize memo stay hot
  (random routing would cut every cache's effective hit rate by 1/N).
* **Bulk fan-out** — one :meth:`predict_proba` / :meth:`advise_full_many`
  call splits its codes by shard, sends each worker one sub-batch, and the
  workers run concurrently; results are scattered back into request order.
* **Zero-copy data plane** — with ``ipc="shm"`` (the default), serving
  sub-batches travel over per-worker shared-memory SPSC rings
  (:mod:`repro.serve.shm_ring`): the router tokenizes and encodes each
  snippet exactly once (a shared lex memo plus a version-keyed encode
  memo) and writes int32 token-id rows, lengths, and source digests into
  the shard's request ring; the worker replies through a fixed-layout
  result ring (probabilities, verdict flags, clause-head ids) — no
  pickling on the hot path, which is what made one shard beat two on raw
  throughput under the queue transport.  Control-plane traffic
  (heartbeats, stats, reload/canary broadcasts, stop) stays on the
  queues, as do sub-batches that do not fit a ring slot and fleets whose
  engines cannot describe a codec (custom tokenizers) — ``ipc="queue"``
  is the explicit escape hatch (CLI: ``--ipc``).  Request frames carry a
  codec tag derived from the deployed model version; a worker that has
  already applied a racing reload answers a *fault* frame and the parent
  re-encodes under the fresh codec and retries, so a stale row is never
  scored.  Every segment is created (and unlinked at :meth:`close`) by
  the parent, workers only attach — ``/dev/shm`` stays clean even when
  every worker died.
* **Concurrent callers** — replies are tagged with request ids, so multiple
  threads (e.g. HTTP handler threads) can have calls in flight at once;
  calls touching disjoint shards proceed fully in parallel.
* **Graceful fallback** — ``n_shards=1`` (without autoscaling) builds the
  engine in-process and skips multiprocessing entirely (same API, zero IPC
  overhead), so callers can treat the shard count as a pure tuning knob.
* **Load-signal autoscaling** — with an :class:`AutoscaleConfig`, the
  engine samples the in-flight backlog each call into a rolling window and
  grows/shrinks the active worker count between ``min_shards`` and
  ``max_shards``.  With ``latency_high_ms`` set, a second rolling window
  over per-snippet round-trip latency also triggers growth — a slow model
  saturates its workers long before the queue deepens, and latency is the
  signal that sees it.  Routing stays consistent on resize (always
  ``digest % n_shards`` over the *active* count), growth replays the last
  hot-reload (and any live canary) so new workers never serve stale
  weights, and hysteresis (full-window gate + cooldown) keeps the fleet
  from flapping.
* **Hot reload** — :meth:`reload` broadcasts an advisor-checkpoint swap to
  every active worker (workers must host an engine exposing
  ``reload(path)``, e.g. :class:`~repro.serve.registry.MultiModelEngine`).
* **Canary rollout** — :meth:`start_canary` / :meth:`promote` /
  :meth:`rollback` broadcast the registry-level canary deployment to
  every worker under one parent-issued version tag; because arm
  assignment is a pure digest hash, every worker splits traffic
  identically, and workers the autoscaler grows mid-rollout replay the
  canary at spawn.
* **Fault tolerance** — a worker supervisor (see
  :class:`SupervisorConfig`) heartbeats every active worker over the
  reply-token plumbing, detects crashed or wedged processes, and
  respawns the slot with the same replay-at-spawn path the autoscaler
  uses, under an exponential-backoff restart budget; every serving
  request carries a deadline, and a request that times out or lands on a
  dead worker is retried once on a healthy shard (then the in-process
  fallback engine) before being answered with an explicit *degraded*
  neutral verdict instead of an exception.  Deterministic fault
  injection for all of this lives in :mod:`repro.serve.chaos`.
* **Observability** — :meth:`stats` aggregates every worker's engine
  counters and reports per-shard routed-request counts, live queue depths
  (requests sent but not yet answered), the deployed model version, the
  autoscaler's state (current shards, last resize and its reason), and
  the supervisor's fault counters (``restarts``, ``faults``,
  ``deadline_exceeded``, ``degraded_answers``).

Workers are started with the ``fork`` start method when the platform
offers it (the factory may close over live models — fork shares their
memory copy-on-write); otherwise ``spawn`` is used and the factory must be
picklable (a module-level function or :func:`functools.partial` of one).
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing as mp
import queue as queue_mod
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.nn.dtype import get_dtype
from repro.serve.chaos import ChaosConfig, inject_fault
from repro.serve.api import AdviceRequest, AdviceResult
from repro.serve.engine import Advice, LRUCache, source_digest
from repro.serve.metrics import RollingMean, merge_arm_stats, merge_stat_dicts
from repro.tokenize import ERROR_TOKEN, robust_text_tokens, text_tokens
from repro.serve.shm_ring import (
    STATUS_ERROR,
    STATUS_FAULT,
    STATUS_OK,
    FrameTooBig,
    ShmRing,
    decode_request,
    decode_result,
    decode_text,
    encode_request,
    encode_result,
    encode_text,
    reply_meta,
    split_reply_meta,
)

__all__ = ["AutoscaleConfig", "DeadlineExceeded", "ShardedEngine",
           "SupervisorConfig", "shard_of", "snapshot_stats"]

_STOP = "stop"

#: Bulk serving methods: the only calls that carry request deadlines, may
#: be answered with degraded verdicts, and advance the chaos call counter.
_SERVING_METHODS = frozenset(
    {"predict_proba", "advise_many", "advise_full_many"})

#: Wire ids of the serving methods on the shared-memory rings (request
#: frame ``meta`` word; echoed in the low byte of reply metas).
_METHOD_IDS = {"predict_proba": 0, "advise_many": 1, "advise_full_many": 2}
_METHOD_NAMES = {wire_id: name for name, wire_id in _METHOD_IDS.items()}

#: Control methods that change the deployed weights: the ring worker
#: drains committed request frames *before* applying one, preserving the
#: queue transport's FIFO guarantee that requests sent before a rollout
#: are served on the weights they were encoded for.
_MUTATING_METHODS = frozenset(
    {"reload", "start_canary", "canary_promote", "canary_rollback"})

#: How long a worker will wait for reply-ring space before giving the
#: frame up (the parent consumes replies continuously; a full reply ring
#: for this long means the caller is gone — its deadline path covers it).
_RING_REPLY_TIMEOUT_S = 10.0


def _codec_tag(version: str) -> int:
    """4-byte staleness tag of a deployed model version, as the int32
    carried in every ring request frame.  Workers recompute it from their
    own ``model_version``; a mismatch means the frame was encoded under a
    different vocabulary generation and must be re-encoded, not scored."""
    raw = hashlib.blake2b(version.encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(raw, "little", signed=True)


class DeadlineExceeded(RuntimeError):
    """A worker request missed its deadline (see
    ``SupervisorConfig.request_timeout_s``).  Internal to the serving
    path — callers of the bulk APIs see a degraded verdict, never this."""


def _route_key(code: str) -> int:
    """Shard-count-independent routing hash for a snippet (blake2b-based,
    stable across processes and runs, unlike the per-process-salted
    ``hash()``).  ``_route_key(code) % n_shards`` is the shard index —
    split out so bulk callers can hash outside the routing lock.  Derived
    from the same 16-byte :func:`source_digest` the ring transport ships,
    so the scatter path hashes each snippet exactly once."""
    return int.from_bytes(source_digest(code)[:8], "big")


def shard_of(code: str, n_shards: int) -> int:
    """Deterministic shard index for a snippet.

    Keyed on a blake2b digest of the source text, so a given snippet
    always hits the same shard's warm caches.
    """
    return _route_key(code) % n_shards


@dataclass(frozen=True)
class AutoscaleConfig:
    """Queue-depth autoscaling knobs for :class:`ShardedEngine`.

    Each serving call samples the mean per-shard backlog (requests sent
    but unanswered, over active shards) into a rolling window of
    ``window`` samples.  Once the window is full and ``cooldown_s`` has
    passed since the last resize, a mean above ``high_watermark`` grows
    the fleet by one worker and a mean below ``low_watermark`` shrinks it
    by one, always staying within ``[min_shards, max_shards]``.  The
    window is cleared after every resize, so the next decision is based
    entirely on post-resize load — together with the cooldown this is the
    hysteresis that prevents flapping.

    ``latency_high_ms`` (optional) adds a second grow signal: a rolling
    window over the per-snippet round-trip latency of each worker
    sub-batch (send to reply, forward pass included).  When its mean
    exceeds the watermark the fleet grows even with shallow queues —
    sequential callers never build a backlog, but a slow (e.g. just
    reloaded, bigger) model still saturates the workers — and while it is
    above the watermark the fleet refuses to shrink.  ``None`` (default)
    keeps autoscaling purely queue-depth driven.  Tuning guidance lives
    in ``docs/operations.md``.
    """

    min_shards: int = 1
    max_shards: int = 4
    high_watermark: float = 2.0
    low_watermark: float = 0.25
    window: int = 16
    cooldown_s: float = 5.0
    latency_high_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ValueError("min_shards must be >= 1")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if not 0.0 <= self.low_watermark < self.high_watermark:
            raise ValueError(
                "need 0 <= low_watermark < high_watermark")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if self.latency_high_ms is not None and self.latency_high_ms <= 0:
            raise ValueError("latency_high_ms must be > 0 (or None)")

    def clamp(self, n_shards: int) -> int:
        """``n_shards`` clamped into ``[min_shards, max_shards]``."""
        return max(self.min_shards, min(self.max_shards, n_shards))


@dataclass(frozen=True)
class SupervisorConfig:
    """Fault-tolerance knobs for :class:`ShardedEngine`.

    **Deadlines** — every bulk serving request is sent with a deadline of
    ``request_timeout_s`` seconds (``None`` disables).  A request that
    misses it is retried once on a healthy shard, then on the in-process
    fallback engine, and finally answered with a *degraded* neutral
    verdict (``p = 0.5``, ``needs_directive = False``, ``degraded=True``)
    — callers always get an answer, never a hang or an exception.

    **Supervision** — a daemon thread wakes every
    ``heartbeat_interval_s`` seconds (``0`` disables supervision), reaps
    workers whose process died, and pings live workers over the normal
    reply plumbing; a worker that cannot answer a ping within
    ``heartbeat_timeout_s`` is wedged (stuck in a forward pass or a
    deadlock) and is terminated so its slot can be respawned.

    **Restart budget** — respawns of one slot back off exponentially
    (``restart_backoff_s`` doubling per consecutive failure, capped at
    ``restart_backoff_max_s``).  After ``restart_budget`` consecutive
    failures the slot is *degraded*: the supervisor stops fast-respawning
    (retrying only at the capped backoff) and traffic that cannot be
    served by the remaining shards falls through to an in-process engine
    built from the factory — a crash-looping checkpoint serves degraded
    instead of flapping the fleet.  A worker that answers a heartbeat
    resets its slot's budget.
    """

    request_timeout_s: Optional[float] = 30.0
    heartbeat_interval_s: float = 1.0
    heartbeat_timeout_s: float = 10.0
    restart_backoff_s: float = 0.1
    restart_backoff_max_s: float = 30.0
    restart_budget: int = 3

    def __post_init__(self) -> None:
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be > 0 (or None)")
        if self.heartbeat_interval_s < 0:
            raise ValueError("heartbeat_interval_s must be >= 0 (0 disables)")
        if self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be > 0")
        if self.restart_backoff_s <= 0:
            raise ValueError("restart_backoff_s must be > 0")
        if self.restart_backoff_max_s < self.restart_backoff_s:
            raise ValueError(
                "restart_backoff_max_s must be >= restart_backoff_s")
        if self.restart_budget < 0:
            raise ValueError("restart_budget must be >= 0")

    def backoff(self, consecutive_failures: int) -> float:
        """Restart delay after ``consecutive_failures`` failed respawns."""
        return min(self.restart_backoff_max_s,
                   self.restart_backoff_s * (2.0 ** consecutive_failures))


def snapshot_stats(engine) -> Dict[str, object]:
    """Engine-agnostic stats snapshot: supports the single-head
    ``engine.stats`` (an ``EngineStats``), ``MultiModelEngine.stats()``,
    and ``ShardedEngine.stats()`` alike.  The one helper shared by the
    worker loop and the CLI's ``--stats`` dump."""
    stats = getattr(engine, "stats", None)
    if callable(stats):
        return stats()
    if stats is not None:
        return stats.as_dict()
    return {}


def _head_names(engine) -> List[str]:
    """Engine-agnostic model-head listing (empty for single-model engines)."""
    names = getattr(engine, "head_names", None)
    if callable(names):
        return list(names())
    return []


def _well_formed(result, expected: int) -> bool:
    """Whether a worker's ``ok`` reply can answer an ``expected``-snippet
    sub-batch: a non-string sequence of exactly that length.  A garbled
    IPC payload (chaos ``malformed``, a corrupted pipe) must be treated
    as a fault and retried, never scattered back to callers — a str is
    rejected explicitly because ``zip`` would happily pair its characters
    with request rows."""
    if isinstance(result, (str, bytes)):
        return False
    try:
        return len(result) == expected
    except TypeError:
        return False


def _dispatch(engine, method: str, payload):
    """Run one control/serving method against the worker's engine.

    The single dispatch table shared by the queue loop and the ring
    loop's control-queue arm, so the two transports cannot drift.
    ``codec`` answers the engine's transport codec (``None`` when the
    engine cannot describe one — the parent then pins the fleet to the
    queue transport)."""
    if method == "ping":
        return "pong"
    if method == "stats":
        return snapshot_stats(engine)
    if method == "heads":
        return _head_names(engine)
    if method == "codec":
        describe = getattr(engine, "codec", None)
        return describe() if callable(describe) else None
    if method == "reload":
        path, version, segment = (payload if len(payload) == 3
                                  else (*payload, None))
        if segment is not None:
            try:  # engines without a segment= kwarg load eagerly instead
                return engine.reload(path, version=version, segment=segment)
            except TypeError:
                pass
        return engine.reload(path, version=version)
    if method == "start_canary":
        path, fraction, version, segment = (payload if len(payload) == 4
                                            else (*payload, None))
        if segment is not None:
            try:
                return engine.start_canary(path, fraction, version=version,
                                           segment=segment)
            except TypeError:
                pass
        return engine.start_canary(path, fraction, version=version)
    if method == "canary_promote":
        return engine.promote()
    if method == "canary_rollback":
        return engine.rollback()
    return getattr(engine, method)(payload)


def _worker_main(factory, requests, responses, reload_spec=None,
                 canary_spec=None, chaos=None, slot=0,
                 data_rings=None) -> None:
    """Worker loop: build the engine once, then serve method calls.

    ``reload_spec`` — a ``(checkpoint_path, version_tag, segment)``
    triple — replays the parent's last *successful* hot reload on a
    worker spawned after it (the autoscaler growing the fleet): the
    factory closes over the registry the parent started with, so without
    the replay a grown worker would serve pre-reload weights.  The
    parent-issued tag keeps every worker's ``model_version`` identical;
    ``segment``, when set, names the parent-owned shared weights segment
    the rollout published, so the replayed reload maps the fleet's one
    weight copy instead of re-deserializing the checkpoint.
    ``canary_spec`` — ``(path, fraction, version_tag, segment)`` —
    likewise replays a canary rollout that was live when the grow was
    scheduled, so a grown worker splits traffic exactly like its
    siblings.  A failed replay (the checkpoint vanished since) falls
    back to the weights already loaded and keeps serving — a live worker
    with a divergent ``model_version`` in ``/stats`` beats a dead slot.
    Both specs also arrive as their legacy segment-less tuples.

    Control messages are ``(rid, method, payload)`` tuples on the
    ``requests`` queue; replies are ``(rid, "ok", result)`` or
    ``(rid, "error", repr)`` — the echoed request id lets concurrent
    parent threads pair replies with their own requests, and a
    worker-side exception surfaces in the caller instead of hanging the
    shard.  ``ping`` answers ``"pong"`` without touching the engine —
    the supervisor's heartbeat; because the loop is single-threaded, a
    worker wedged inside a serving call cannot answer and the missed
    heartbeat is what exposes it.  ``chaos`` (a
    :class:`~repro.serve.chaos.ChaosConfig`, tests/benches only) injects
    scheduled faults for worker ``slot`` before dispatching each serving
    call, on whichever transport the call arrived.

    ``data_rings`` — ``(request_ring, reply_ring, request_bell,
    reply_bell)``: a pair of :class:`~repro.serve.shm_ring.ShmRing` plus
    their doorbell semaphores — enables the zero-copy data plane: the
    loop multiplexes the control queue with the request ring, serving
    pre-encoded int32 token-id frames without unpickling, and blocks on
    the request doorbell when idle (the parent rings it on every send,
    so waiting costs no CPU and wakeup is immediate).  Every reply
    rings the reply doorbell for the parent's collector.  Frames whose
    codec tag does not match the engine's
    current ``model_version`` answer ``STATUS_FAULT`` (the parent
    re-encodes and retries); torn frames (CRC mismatch) are consumed
    silently — the parent's deadline/retry path covers the loss, and an
    untrusted frame must not be echoed.  Before applying a mutating
    control message (reload/canary/STOP) the loop drains committed
    request frames, preserving the queue transport's FIFO guarantee that
    requests sent before a rollout are served on the weights they were
    encoded for.
    """
    engine = factory()
    if reload_spec is not None:
        try:
            _dispatch(engine, "reload", reload_spec)
        except Exception:  # noqa: BLE001 — factory weights keep serving
            pass
    if canary_spec is not None:
        try:
            _dispatch(engine, "start_canary", canary_spec)
        except Exception:  # noqa: BLE001 — primary-only worker keeps serving
            pass
    serving_calls = 0
    req_ring = resp_ring = req_bell = resp_bell = None
    if data_rings is not None:
        req_ring, resp_ring, req_bell, resp_bell = data_rings
    tag_memo: Dict[str, int] = {}

    def current_tag() -> int:
        version = str(getattr(engine, "model_version", ""))
        tag = tag_memo.get(version)
        if tag is None:
            tag_memo.clear()  # one live version at a time
            tag = tag_memo[version] = _codec_tag(version)
        return tag

    def serve_frame(frame) -> None:
        """Serve one request-ring frame, replying on the reply ring."""
        nonlocal serving_calls
        rid, meta, payload, crc_ok = frame
        method = _METHOD_NAMES.get(meta)
        if not crc_ok or method is None:
            return  # torn/garbage request: parent deadline+retry covers it
        call_index, serving_calls = serving_calls, serving_calls + 1
        if chaos is not None and inject_fault(
                chaos, slot, call_index,
                _RingResponder(resp_ring, meta, resp_bell), rid):
            return
        try:
            tag, rows, digests = decode_request(payload)
            if tag != current_tag():
                resp_ring.push(rid, reply_meta(STATUS_FAULT, meta),
                               encode_text("stale codec tag"),
                               timeout=_RING_REPLY_TIMEOUT_S)
                return
            if method == "predict_proba":
                result = engine.predict_proba_encoded(rows)
            elif method == "advise_many":
                result = engine.advise_many_encoded(rows)
            else:
                result = engine.advise_full_many_encoded(rows, digests)
            head_index = {name: i
                          for i, name in enumerate(_head_names(engine))}
            resp_ring.push(rid, reply_meta(STATUS_OK, meta),
                           encode_result(method, result, head_index),
                           timeout=_RING_REPLY_TIMEOUT_S)
        except FrameTooBig as exc:
            # reply larger than a slot: fault, not error — the parent's
            # retry lands on the queue path via the fallback engine
            resp_ring.push(rid, reply_meta(STATUS_FAULT, meta),
                           encode_text(f"reply overflows ring slot: {exc}"),
                           timeout=_RING_REPLY_TIMEOUT_S)
        except Exception as exc:  # noqa: BLE001 — relayed to the caller
            try:
                resp_ring.push(rid, reply_meta(STATUS_ERROR, meta),
                               encode_text(f"{type(exc).__name__}: {exc}"),
                               timeout=_RING_REPLY_TIMEOUT_S)
            except Exception:  # noqa: BLE001 — reply ring gone: give up
                pass

    def drain_ring() -> None:
        """Serve every already-committed request frame."""
        if req_ring is None:
            return
        while True:
            frame = req_ring.try_pop()
            if frame is None:
                return
            serve_frame(frame)
            resp_bell.release()

    def handle(rid, method: str, payload) -> None:
        """Serve one control-queue message (either transport mode)."""
        nonlocal serving_calls
        if method in _SERVING_METHODS:
            call_index, serving_calls = serving_calls, serving_calls + 1
            if chaos is not None and inject_fault(chaos, slot, call_index,
                                                 responses, rid):
                return
        try:
            responses.put((rid, "ok", _dispatch(engine, method, payload)))
        except Exception as exc:  # noqa: BLE001 — relayed to the caller
            responses.put((rid, "error", f"{type(exc).__name__}: {exc}"))

    try:
        if data_rings is None:
            while True:
                msg = requests.get()
                if msg == _STOP:
                    return
                handle(*msg)
        else:
            # Ring frames are burst-served first — a try_pop on an empty
            # ring is two shared int64 reads, far cheaper than a queue
            # probe — with the control queue checked between bursts (at
            # least every 64 frames), which bounds control latency
            # (ping / stats / reload) under a sustained ring flood.  An
            # idle worker *blocks* on the request doorbell instead of
            # polling: the parent rings it after every ring push and
            # every control enqueue, so wakeup is an OS-level futex, not
            # a sleep ladder — on a shared core, spinning here would
            # steal exactly the cycles the forward passes need.
            while True:
                served = False
                for _ in range(64):
                    frame = req_ring.try_pop()
                    if frame is None:
                        break
                    serve_frame(frame)
                    resp_bell.release()
                    served = True
                msg = None
                try:
                    msg = requests.get_nowait()
                except queue_mod.Empty:
                    pass
                if msg is not None:
                    if msg == _STOP:
                        drain_ring()  # committed frames were sent first
                        return
                    if msg[1] in _MUTATING_METHODS:
                        drain_ring()  # FIFO vs. the weights they encoded for
                    handle(*msg)
                    continue
                if served:
                    continue  # the ring may still hold frames; no wait
                # 50 ms is a safety net only — every producer rings the
                # bell, so a healthy fleet never waits it out
                req_bell.acquire(timeout=0.05)
    finally:
        if data_rings is not None:
            req_ring.close()
            resp_ring.close()
        close = getattr(engine, "close", None)
        if close is not None:
            close()


class _Token(NamedTuple):
    """Handle for one in-flight worker request.

    Captures the response queue and process object *at send time*: if the
    autoscaler later retires this slot and respawns it with fresh queues,
    the caller still collects its reply from the queue the retired worker
    writes to.  ``sent_at`` (monotonic seconds) is the round-trip
    latency reference for the autoscaler's latency signal.  ``deadline``
    (monotonic seconds, ``None`` = wait forever) bounds the collect;
    ``tracked`` is whether the request counts toward the shard's queue
    depth (supervisor heartbeats do not — they would pollute the
    autoscaler's backlog signal).
    """

    rid: int
    shard: int
    responses: object
    worker: object
    sent_at: float
    deadline: Optional[float] = None
    tracked: bool = True
    #: request travelled on the shard's shared-memory rings — collect the
    #: reply through the ring receive lock, not the queue one
    ring: bool = False


class _RingResponder:
    """Reply-channel shim handed to chaos injection on the ring transport.

    :func:`~repro.serve.chaos.inject_fault` answers ``malformed`` with
    ``put((rid, "ok", garbage))``; the ring realization of a corrupted
    reply is a *torn write*, so the shim commits a frame with a
    deliberately bad CRC — the parent detects the mismatch, counts a
    fault, and retries, exactly as it would for real shared-memory
    corruption."""

    def __init__(self, ring: ShmRing, method_id: int, bell=None) -> None:
        self._ring = ring
        self._method_id = method_id
        self._bell = bell

    def put(self, msg) -> None:
        rid = msg[0]
        self._ring.push(rid, reply_meta(STATUS_OK, self._method_id),
                        np.zeros(4, dtype=np.int32), corrupt=True,
                        timeout=_RING_REPLY_TIMEOUT_S)
        if self._bell is not None:
            self._bell.release()


class _RingChannel:
    """Queue-shaped adapter over one worker's reply ring.

    Exposes the one method (:meth:`get`) the collect path uses on a
    ``multiprocessing.Queue``, so :class:`_Token` / ``_collect`` /
    ``_reply`` work unchanged on either transport.  Decodes reply frames
    into the queue transport's ``(rid, status, result)`` envelopes:
    CRC-mismatched or undecodable frames become ``"fault"`` (retryable
    transport corruption, distinct from ``"error"`` — a deterministic
    engine exception that would fail anywhere)."""

    def __init__(self, ring: ShmRing, engine: "ShardedEngine",
                 bell=None) -> None:
        self._ring = ring
        self._engine = engine
        self._bell = bell

    def _wait_frame(self, timeout: float):
        """One committed reply frame, or ``None`` on timeout.

        Blocks on the reply doorbell (the worker rings it once per
        reply) instead of polling the ring — on a shared core a polling
        collector steals the cycles the worker's forward pass needs.
        Doorbell counts and frames can drift apart harmlessly (a frame
        popped before its release is consumed leaves a surplus wakeup),
        so every wakeup just re-checks the ring."""
        if self._bell is None:
            return self._ring.pop(timeout=max(0.0, timeout))
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            frame = self._ring.try_pop()
            if frame is not None:
                return frame
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not self._bell.acquire(timeout=remaining):
                return self._ring.try_pop()  # a release may race the timeout

    def get(self, timeout: float = 1.0):
        frame = self._wait_frame(timeout)
        if frame is None:
            raise queue_mod.Empty
        rid, meta, payload, crc_ok = frame
        if not crc_ok:
            return rid, "fault", "torn ring frame (crc mismatch)"
        status, method_id = split_reply_meta(meta)
        method = _METHOD_NAMES.get(method_id)
        if status == STATUS_OK and method is not None:
            try:
                return rid, "ok", decode_result(
                    method, payload, self._engine._ring_heads)
            except ValueError as exc:
                return rid, "fault", f"undecodable ring frame: {exc}"
        text = decode_text(payload)
        if status == STATUS_ERROR:
            return rid, "error", text
        return rid, "fault", text


class ShardedEngine:
    """Bulk advisor traffic partitioned across N single-engine workers.

    ``factory`` builds one engine per worker (an
    :class:`~repro.serve.engine.InferenceEngine`, a
    :class:`~repro.serve.registry.MultiModelEngine`, or anything exposing
    the same bulk methods).  All bulk calls (:meth:`predict_proba`,
    :meth:`advise_many`, :meth:`advise_full_many`) route per snippet by
    :func:`shard_of` over the *active* shard count and preserve request
    order in the returned results.

    Passing ``autoscale=AutoscaleConfig(...)`` turns on load-signal
    autoscaling: the worker fleet grows and shrinks between the
    configured bounds as the rolling backlog — and, with
    ``latency_high_ms``, per-snippet latency — signals demand (see
    :class:`AutoscaleConfig`).  Autoscaling always runs in
    multiprocessing mode — the in-process ``n_shards=1`` fallback cannot
    grow.

    Thread-safe: replies carry request ids, so concurrent bulk calls (e.g.
    HTTP handler threads) run in parallel — per shard, whichever caller is
    reading parks any reply that is not its own for the thread it belongs
    to; calls on disjoint shards never contend.

    ``ipc`` selects the data-plane transport: ``"shm"`` (default) sends
    serving sub-batches over per-worker shared-memory rings sized by
    ``ring_slots`` × ``ring_slot_words`` (see the module docstring and
    ``docs/operations.md``); ``"queue"`` pins everything to the pickled
    queues.  The shm transport transparently falls back to the queues
    per sub-batch when a frame would not fit a ring slot, and for the
    whole fleet when the workers' engine cannot describe an encode codec
    (custom tokenizers) — correctness never depends on the transport.
    """

    def __init__(
        self,
        factory: Callable[[], object],
        n_shards: int = 1,
        mp_context: Optional[str] = None,
        autoscale: Optional[AutoscaleConfig] = None,
        supervisor: Optional[SupervisorConfig] = None,
        chaos: Optional[ChaosConfig] = None,
        ipc: str = "shm",
        ring_slots: int = 8,
        ring_slot_words: int = 1 << 17,
        share_weights: bool = True,
        shared_weights: Optional[object] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if ipc not in ("queue", "shm"):
            raise ValueError(f"ipc must be 'queue' or 'shm', got {ipc!r}")
        if ring_slots < 1 or ring_slot_words < 16:
            raise ValueError("need ring_slots >= 1 and ring_slot_words >= 16")
        if autoscale is not None:
            n_shards = autoscale.clamp(n_shards)
        self.n_shards = n_shards
        self.autoscale = autoscale
        #: fault-tolerance knobs; defaults apply when not given
        self.supervisor = (supervisor if supervisor is not None
                           else SupervisorConfig())
        self._chaos = chaos
        self.routed: List[int] = []       # requests routed per slot, ever
        self._depth: List[int] = []       # sub-batches in flight per slot
        self._meta_lock = threading.Lock()   # routed/_depth/request ids
        self._route_lock = threading.RLock()  # active shard count + resizes
        self._rids = itertools.count()
        self._factory = factory
        self._reload_spec: Optional[Tuple[str, str, Optional[str]]] = None
        self._canary_spec: Optional[
            Tuple[str, float, str, Optional[str]]] = None
        self._reload_count = 0
        # one-copy weights: rollouts publish the checkpoint blob into a
        # parent-owned shared segment and broadcast its name instead of
        # having every worker re-deserialize the checkpoint.  The parent
        # keeps every handle it ever created (mirroring _all_rings) so
        # close() unlinks them all even when workers died mid-mapping;
        # the *current* primary/canary segments stay linked while live —
        # respawned workers attach them by name at replay.
        self._share_weights = bool(share_weights)
        self._all_weights: List[object] = []
        self._weights_primary = shared_weights
        self._weights_canary = None
        if shared_weights is not None:
            self._all_weights.append(shared_weights)
        self._model_version = "0"
        # source digests whose lexing needed error recovery, tracked
        # router-side: on the shm transport workers see pre-encoded rows
        # and cannot know, so advise_v1 stamps Advice.recovered from here
        self._recovered_digests = LRUCache(4096)
        self._local = None
        self._workers: List[mp.Process] = []
        self._requests: List[mp.queues.Queue] = []
        self._responses: List[mp.queues.Queue] = []
        self._closed = False
        # zero-copy data plane (ipc="shm"); aligned per-slot lists hold
        # None in queue mode so slot indices stay interchangeable
        self.ipc = ipc
        self._ring_slots = ring_slots
        self._ring_slot_words = ring_slot_words
        self._req_rings: List[Optional[ShmRing]] = []
        self._req_bells: List = []   # request doorbells, None in queue mode
        self._resp_rings: List[Optional[ShmRing]] = []
        self._ring_channels: List[Optional[_RingChannel]] = []
        self._ring_recv_locks: List[threading.Lock] = []
        self._all_rings: List[ShmRing] = []   # every segment ever created
        self._ring_disabled = False   # engine has no codec: queues forever
        self._ring_heads: List[str] = []
        self._codec: Optional[dict] = None
        self._codec_lock = threading.Lock()        # codec ref + encode memo
        self._codec_fetch_lock = threading.Lock()  # serialize fetches
        self._lex_memo = None
        self._encode_memo = LRUCache(4096)
        self._ring_sends = 0
        self._ring_overflows = 0
        self._queue_serving_sends = 0
        # autoscaler state
        self._window = (RollingMean(autoscale.window)
                        if autoscale is not None else None)
        self._lat_window = (RollingMean(autoscale.window)
                            if autoscale is not None
                            and autoscale.latency_high_ms is not None
                            else None)
        self._last_resize_at = time.monotonic()
        self._resizes = 0
        self._resizing = False    # a grow is preparing outside _route_lock
        self._last_resize: Optional[Dict[str, object]] = None
        # fault-tolerance state (counters under _meta_lock)
        self._restarts = 0            # successful worker respawns
        self._faults = 0              # fault observations (dead/hung/garbled)
        self._deadline_exceeded = 0   # requests that missed their deadline
        self._retries = 0             # sub-batches retried after a fault
        self._degraded_answers = 0    # snippets answered with the neutral verdict
        self._fallback_answers = 0    # snippets served by the in-process fallback
        self._rejected_snippets = 0   # snippets the router refused (byte cap)
        self._slot_restarts: List[int] = []   # consecutive failed respawns
        self._slot_next_retry: List[float] = []
        self._slot_degraded: List[bool] = []
        self._slot_spawns: List[int] = []     # spawn generation per slot
        self._abandoned: List[set] = []       # rids whose caller gave up
        self._fallback_lock = threading.Lock()
        self._fallback_engine = None
        self._fallback_failed = False
        self._stop_supervisor = threading.Event()
        self._supervisor_thread: Optional[threading.Thread] = None
        if n_shards == 1 and autoscale is None:
            # in-process fallback: same API, no IPC, no extra processes
            self.routed.append(0)
            self._depth.append(0)
            self._local = factory()
            return
        # reply plumbing: one reader at a time per shard; replies that
        # belong to another thread's request are parked in _pending
        self._recv_locks: List[threading.Lock] = []
        self._pending_locks: List[threading.Lock] = []
        self._pending: List[Dict[int, Tuple[str, object]]] = []
        if mp_context is None:
            mp_context = ("fork" if "fork" in mp.get_all_start_methods()
                          else "spawn")
        self._mp_ctx = mp.get_context(mp_context)
        for shard in range(n_shards):
            self._install_worker(shard, self._start_worker(shard, None, None))
        if self.supervisor.heartbeat_interval_s > 0:
            self._supervisor_thread = threading.Thread(
                target=self._supervise_loop, name="advisor-supervisor",
                daemon=True)
            self._supervisor_thread.start()

    # -- worker lifecycle --------------------------------------------------

    def _start_worker(self, index: int,
                      reload_spec: Optional[Tuple[str, str]],
                      canary_spec: Optional[Tuple[str, float, str]]
                      ) -> Optional[Tuple]:
        """Spawn a worker process for slot ``index`` (no routing changes).

        Deliberately runs *without* ``_route_lock``: process start can
        take a while and the slot is not routable until
        :meth:`_install_worker` publishes it.  ``reload_spec`` /
        ``canary_spec`` (the caller's snapshots of the last successful
        reload and any live canary) are replayed in the worker at startup
        so a grown worker never serves pre-rollout weights and splits
        canary traffic like its siblings.  Returns ``None`` — grow
        aborted, retry later — when the slot's retired worker is still
        draining in-flight requests: terminating it would fail the
        callers waiting on those replies.

        On the shm transport every (re)spawn gets a *fresh* ring pair —
        a dead worker may have died holding a slot, and reusing its
        rings would hand the replacement a corrupt cursor.  All rings
        ever created are remembered in ``_all_rings`` so :meth:`close`
        can unlink every segment regardless of worker state.
        """
        if index < len(self._workers):
            old = self._workers[index]
            if old.is_alive():  # retired worker still draining
                old.join(timeout=1.0)
                if old.is_alive():
                    return None  # don't kill its in-flight work; retry
        req: "mp.queues.Queue" = self._mp_ctx.Queue()
        resp: "mp.queues.Queue" = self._mp_ctx.Queue()
        rings = bells = None
        if self.ipc == "shm":
            rings = (ShmRing(self._ring_slots, self._ring_slot_words),
                     ShmRing(self._ring_slots, self._ring_slot_words))
            self._all_rings.extend(rings)
            # doorbells: blocking wakeup for ring traffic (see the worker
            # loop) — fresh with the rings on every (re)spawn
            bells = (self._mp_ctx.Semaphore(0), self._mp_ctx.Semaphore(0))
        # a respawned worker is only re-armed with the chaos schedule when
        # the schedule says so — by default the replacement is healthy
        spawned = (self._slot_spawns[index]
                   if index < len(self._slot_spawns) else 0)
        chaos = (self._chaos if self._chaos is not None
                 and (spawned == 0 or self._chaos.rearm) else None)
        proc = self._mp_ctx.Process(
            target=_worker_main,
            args=(self._factory, req, resp, reload_spec, canary_spec,
                  chaos, index,
                  rings + bells if rings is not None else None),
            name=f"advisor-shard-{index}", daemon=True)
        proc.start()
        return proc, req, resp, rings, bells

    def _install_worker(self, index: int, started: Tuple) -> None:
        """Publish a started worker into slot ``index``.

        Appends a new slot or replaces a retired one (the autoscaler
        growing back into it).  Per-slot locks and pending-reply parking
        are created once and never replaced — late replies from a retired
        worker drain through the queue objects their callers captured in
        their :class:`_Token`.  Callers resizing a live engine hold
        ``_route_lock``.
        """
        proc, req, resp, rings, bells = started
        channel = (_RingChannel(rings[1], self, bells[1])
                   if rings is not None else None)
        if index == len(self._workers):
            self._workers.append(proc)
            self._requests.append(req)
            self._responses.append(resp)
            self._req_rings.append(rings[0] if rings is not None else None)
            self._resp_rings.append(rings[1] if rings is not None else None)
            self._req_bells.append(bells[0] if bells is not None else None)
            self._ring_channels.append(channel)
            self._ring_recv_locks.append(threading.Lock())
            self._recv_locks.append(threading.Lock())
            self._pending_locks.append(threading.Lock())
            self._pending.append({})
            self._abandoned.append(set())
            self.routed.append(0)
            self._depth.append(0)
            self._slot_restarts.append(0)
            self._slot_next_retry.append(0.0)
            self._slot_degraded.append(False)
            self._slot_spawns.append(1)
        else:
            self._workers[index] = proc
            self._requests[index] = req
            self._responses[index] = resp
            self._req_rings[index] = rings[0] if rings is not None else None
            self._resp_rings[index] = rings[1] if rings is not None else None
            self._req_bells[index] = bells[0] if bells is not None else None
            self._ring_channels[index] = channel
            self._slot_spawns[index] += 1

    # -- routing -----------------------------------------------------------

    def shard_of(self, code: str) -> int:
        """Shard index this engine routes ``code`` to (active count)."""
        return shard_of(code, self.n_shards)

    # -- worker IPC --------------------------------------------------------

    def _send(self, shard: int, method: str, payload,
              deadline: Optional[float] = None,
              tracked: bool = True) -> _Token:
        """Enqueue one request on ``shard``; returns its reply token.

        ``deadline`` (monotonic) bounds the later :meth:`_collect`;
        ``tracked=False`` (supervisor heartbeats) skips the queue-depth
        accounting so liveness probes never look like backlog."""
        if self._closed:
            raise RuntimeError("sharded engine is closed")
        with self._route_lock:
            token = _Token(next(self._rids), shard,
                           self._responses[shard], self._workers[shard],
                           time.monotonic(), deadline, tracked)
            if tracked:
                with self._meta_lock:
                    self._depth[shard] += 1
            self._requests[shard].put((token.rid, method, payload))
            self._ring_doorbell(shard)  # wake a worker blocked on its bell
        return token

    def _ring_doorbell(self, shard: int) -> None:
        """Wake ``shard``'s worker (shm mode): it blocks on the request
        doorbell when idle, so every enqueue — ring or control — rings."""
        bell = (self._req_bells[shard]
                if shard < len(self._req_bells) else None)
        if bell is not None:
            bell.release()

    # -- zero-copy data plane ----------------------------------------------

    def _serving_codec(self) -> Optional[dict]:
        """The fleet's transport codec, or ``None`` (queue transport).

        Fetched lazily from the first live worker over the control queue
        and cached until a rollout (or an observed stale-tag fault)
        invalidates it; a worker whose engine answers ``None`` (custom
        tokenizer, no ``codec()``) permanently pins the fleet to the
        queue transport.  The cached dict carries the worker's vocab,
        ``max_len``, head order, and the 4-byte version ``tag`` stamped
        into every request frame."""
        if (self._local is not None or self.ipc != "shm"
                or self._ring_disabled):
            return None
        codec = self._codec
        if codec is not None:
            return codec
        with self._codec_fetch_lock:
            if self._codec is not None or self._ring_disabled:
                return self._codec
            return self._fetch_codec()

    def _fetch_codec(self) -> Optional[dict]:
        """One codec fetch attempt (caller holds ``_codec_fetch_lock``)."""
        with self._route_lock:
            if self._closed:
                return None
            shards = [s for s in range(self.n_shards)
                      if self._workers[s].is_alive()]
        for shard in shards:
            try:
                token = self._send(shard, "codec", None,
                                   deadline=self._request_deadline())
                status, result = self._collect(token)
            except RuntimeError:  # includes DeadlineExceeded
                continue
            if status != "ok":
                continue
            if not isinstance(result, dict) or "vocab" not in result:
                self._ring_disabled = True   # engine cannot describe one
                return None
            codec = dict(result)
            codec["tag"] = _codec_tag(str(codec["version"]))
            # replicate the *worker's* tokenizer, named in the codec, so
            # router-side encoding stays bit-identical with what a queue
            # transport worker would produce (the parity invariant)
            lexers = {"resilient": robust_text_tokens, "strict": text_tokens}
            lex = lexers.get(str(codec.get("tokenizer", "strict")))
            if lex is None:   # a lexer this router build cannot replicate
                self._ring_disabled = True
                return None
            if self._lex_memo is None or self._lex_memo._tokenize is not lex:
                from repro.serve.registry import _SharedLexMemo
                self._lex_memo = _SharedLexMemo(lex, 4096)
            self._ring_heads = list(codec.get("heads") or [])
            self._codec = codec
            return codec
        return None   # nobody answered; retried on the next serving call

    def _invalidate_codec(self) -> None:
        """Drop the cached codec (a rollout changed the model version, or
        a worker answered a stale-tag fault).  The encode memo survives —
        its keys are version-prefixed, so stale entries can never leak
        into frames tagged with the new version."""
        with self._codec_lock:
            self._codec = None

    def _encode_transport(self, codec: dict, code: str,
                          digest: Optional[bytes] = None
                          ) -> Tuple[bytes, np.ndarray]:
        """``(digest, int32 ids)`` for one snippet under ``codec`` —
        tokenized at most once per snippet fleet-wide (shared lex memo)
        and encoded at most once per (version, snippet) (the bounded
        encode memo).  This is the encode-once half of the zero-copy
        plan: workers never re-tokenize what the router already did.
        ``digest`` lets the caller reuse the routing digest instead of
        hashing the snippet a second time."""
        if digest is None:
            digest = source_digest(code)
        return self._encode_batch(codec, [code], [digest])[0]

    def _encode_batch(self, codec: dict, codes: Sequence[str],
                      digests: Sequence[bytes]
                      ) -> List[Tuple[bytes, np.ndarray]]:
        """:meth:`_encode_transport` for a whole batch, amortized: one
        lock acquisition covers every memo lookup (the per-row lock
        round trip was a measurable slice of the warm hot path), and
        only the misses pay tokenize + encode."""
        version = str(codec["version"]).encode("utf-8")
        keys = [version + digest for digest in digests]
        with self._codec_lock:
            rows = [self._encode_memo.get(key) for key in keys]
        missing = [i for i, ids in enumerate(rows) if ids is None]
        if missing:
            vocab, max_len = codec["vocab"], codec["max_len"]
            lex = self._lex_memo
            recovered: List[bytes] = []
            for i in missing:
                tokens = lex(codes[i])
                rows[i] = vocab.encode(tokens, max_len=max_len)
                if ERROR_TOKEN in tokens:
                    # workers see pre-encoded rows on this transport and
                    # cannot tell recovery happened; remember it here so
                    # advise_v1 can stamp the flag (keyed by bare source
                    # digest — lexing is version-independent)
                    recovered.append(digests[i])
            with self._codec_lock:
                for i in missing:
                    self._encode_memo.put(keys[i], rows[i])
                for digest in recovered:
                    self._recovered_digests.put(digest, True)
        return list(zip(digests, rows))

    def _reply_words(self, method: str, n_items: int) -> int:
        """Exact worst-case reply-frame size (int32 words) for a
        sub-batch, so oversized replies are routed to the queues *before*
        the worker discovers it cannot answer."""
        if method == "advise_full_many":
            return 1 + n_items * (4 + 4 * len(self._ring_heads))
        return 1 + 4 * n_items   # predict_proba / advise_many

    def _send_ring(self, shard: int, method: str,
                   enc: List[Tuple[bytes, np.ndarray]], codec: dict,
                   deadline: Optional[float]) -> Optional[_Token]:
        """Try to push one pre-encoded serving sub-batch onto ``shard``'s
        request ring; returns the reply token, or ``None`` when the ring
        is full / the frame (or its worst-case reply) would not fit a
        slot — the caller then falls back to the control queue.  Caller
        holds ``_route_lock``."""
        ring = (self._req_rings[shard]
                if shard < len(self._req_rings) else None)
        if ring is None:
            return None
        payload = encode_request(codec["tag"], [ids for _, ids in enc],
                                 [digest for digest, _ in enc])
        if (payload.size > ring.slot_words
                or self._reply_words(method, len(enc))
                > self._resp_rings[shard].slot_words):
            with self._meta_lock:
                self._ring_overflows += 1
            return None
        token = _Token(next(self._rids), shard, self._ring_channels[shard],
                       self._workers[shard], time.monotonic(), deadline,
                       True, True)
        if not ring.try_push(token.rid, _METHOD_IDS[method], payload):
            with self._meta_lock:   # ring full: backpressure to the queue
                self._ring_overflows += 1
            return None
        # deliberately NOT ringing the doorbell here: on a shared core
        # the woken worker preempts the sender immediately, serializing a
        # multi-shard fan-out.  Callers ring once per shard after every
        # sub-batch is pushed (the 50 ms acquire timeout in the worker
        # loop is the safety net if a caller forgets).
        with self._meta_lock:
            self._depth[shard] += 1
            self._ring_sends += 1
        return token

    def _send_serving(self, shard: int, method: str, sub: List[str],
                      codec: Optional[dict],
                      enc: Optional[List[Tuple[bytes, np.ndarray]]]
                      ) -> _Token:
        """Send one serving sub-batch on the best transport available:
        the shard's request ring when a codec is live and the frame fits,
        the pickled control queue otherwise.  Caller holds
        ``_route_lock``; ``enc`` carries the pre-encoded rows matching
        ``sub`` (``None`` when no codec was live at encode time)."""
        deadline = self._request_deadline()
        if codec is not None and enc is not None:
            token = self._send_ring(shard, method, enc, codec, deadline)
            if token is not None:
                return token
        with self._meta_lock:
            self._queue_serving_sends += 1
        return self._send(shard, method, list(sub), deadline=deadline)

    def _abandon(self, token: _Token) -> None:
        """Mark ``token``'s reply as unwanted (its caller timed out).

        A late reply that does arrive is dropped at parking time instead
        of sitting in ``_pending`` forever; a reply that was parked in
        the race window is dropped here."""
        shard = token.shard
        with self._pending_locks[shard]:
            if self._pending[shard].pop(token.rid, None) is None:
                self._abandoned[shard].add(token.rid)

    def _collect(self, token: _Token) -> Tuple[str, object]:
        """Wait for the reply to ``token``, parking other threads' replies.

        Raises ``RuntimeError`` if the worker dies before answering, and
        :class:`DeadlineExceeded` once ``token.deadline`` passes — the
        serving path turns both into a retry and, failing that, a
        degraded verdict.  Ring tokens contend on the shard's *ring*
        receive lock (the reply ring is a distinct channel from the reply
        queue); both transports share the per-shard parking dict, which
        is safe because request ids are unique across them."""
        shard = token.shard
        recv_lock = (self._ring_recv_locks[shard] if token.ring
                     else self._recv_locks[shard])
        try:
            while True:
                with self._pending_locks[shard]:
                    if token.rid in self._pending[shard]:
                        return self._pending[shard].pop(token.rid)
                if token.deadline is None:
                    recv_lock.acquire()
                else:
                    remaining = token.deadline - time.monotonic()
                    if remaining <= 0:
                        raise DeadlineExceeded(
                            f"shard {shard} request missed its deadline")
                    # bounded acquire: the thread holding the lock may be
                    # waiting out its own (later) deadline
                    if not recv_lock.acquire(timeout=min(0.25, remaining)):
                        continue
                try:
                    # ours may have been parked while we waited for the lock
                    with self._pending_locks[shard]:
                        if token.rid in self._pending[shard]:
                            return self._pending[shard].pop(token.rid)
                    got_rid, status, result = self._reply(token)
                    if got_rid == token.rid:
                        return status, result
                    with self._pending_locks[shard]:
                        if got_rid in self._abandoned[shard]:
                            self._abandoned[shard].discard(got_rid)
                        else:
                            self._pending[shard][got_rid] = (status, result)
                finally:
                    recv_lock.release()
        except DeadlineExceeded:
            self._abandon(token)
            raise
        finally:
            if token.tracked:
                with self._meta_lock:
                    self._depth[shard] -= 1

    def _reply(self, token: _Token):
        """Next raw reply on ``token``'s queue, without hanging on a dead
        worker.

        Polls with a short timeout and, between polls, checks the worker is
        still alive — a factory that crashes at startup or a worker killed
        mid-request must surface as an error, not wedge callers forever —
        and whether ``token.deadline`` has passed (a *hung* worker is
        still alive; only the deadline unblocks its callers).  Queue and
        process come from the token, so a slot respawned by the
        autoscaler cannot redirect a caller onto the wrong queue."""
        while True:
            timeout = 1.0
            if token.deadline is not None:
                timeout = min(1.0, token.deadline - time.monotonic())
                if timeout <= 0:
                    raise DeadlineExceeded(
                        f"shard {token.shard} request missed its deadline")
            try:
                return token.responses.get(timeout=timeout)
            except queue_mod.Empty:
                if (token.deadline is not None
                        and time.monotonic() >= token.deadline):
                    raise DeadlineExceeded(
                        f"shard {token.shard} request missed its "
                        "deadline") from None
                if not token.worker.is_alive():
                    try:  # a final reply may still be in the queue's pipe
                        return token.responses.get(timeout=1.0)
                    except queue_mod.Empty:
                        raise RuntimeError(
                            f"shard {token.shard} worker died (exitcode "
                            f"{token.worker.exitcode})") from None

    def _scatter_call(self, method: str, codes: Sequence[str]) -> List:
        """Fan ``codes`` out by shard, run ``method`` on each worker's
        sub-batch concurrently, and gather results back in request order.

        Each sub-batch carries a deadline
        (``SupervisorConfig.request_timeout_s``).  A sub-batch whose
        worker died, whose reply was lost or garbled, or whose deadline
        passed is *not* an exception: it is retried once on a healthy
        shard, then on the in-process fallback engine, and finally
        answered with degraded neutral verdicts — every snippet always
        gets an answer.  Worker-side application errors (the engine
        itself raised) still raise, as before: they are deterministic
        and re-running them elsewhere would fail the same way."""
        if self._closed:
            raise RuntimeError("sharded engine is closed")
        if self._local is not None:
            with self._meta_lock:  # routed[] is read-modify-write
                self.routed[0] += len(codes)
            return list(getattr(self._local, method)(list(codes)))
        self._observe_load()
        codec_peek = self._serving_codec()
        if codec_peek is not None:
            # router-side dirty-input admission: the codec ships the
            # workers' byte cap, so oversize snippets are refused *before*
            # the router spends lex time on them — they get the same
            # neutral degraded verdict a worker engine would produce
            cap = int(codec_peek.get("max_snippet_bytes") or 0)
            if cap:
                reject = [i for i, code in enumerate(codes)
                          if len(code.encode("utf-8", errors="replace")) > cap]
                if reject:
                    reject_set = set(reject)
                    keep = [i for i in range(len(codes))
                            if i not in reject_set]
                    with self._meta_lock:
                        self._rejected_snippets += len(reject)
                    kept = (self._scatter_call(
                        method, [codes[i] for i in keep]) if keep else [])
                    neutral = self._neutral_result(method, len(reject))
                    out: List = [None] * len(codes)
                    for i, value in zip(keep, kept):
                        out[i] = value
                    for i, value in zip(reject, neutral):
                        out[i] = value
                    return out
        # hash + encode outside the lock (digests are shard-count
        # independent and tokenize/encode dominate routing cost); bucket +
        # send under it so a concurrent resize cannot strand a sub-batch
        # on a retiring worker.  Collection happens outside the lock.
        digests = [source_digest(code) for code in codes]
        keys = [int.from_bytes(digest[:8], "big") for digest in digests]
        codec = self._serving_codec()
        enc = (self._encode_batch(codec, codes, digests)
               if codec is not None else None)
        with self._route_lock:
            n = self.n_shards
            by_shard: Dict[int, List[int]] = {}
            for i, key in enumerate(keys):
                by_shard.setdefault(key % n, []).append(i)
            # send every sub-batch before collecting: workers overlap
            tokens: Dict[int, _Token] = {}
            for shard, rows in by_shard.items():
                with self._meta_lock:
                    self.routed[shard] += len(rows)
                tokens[shard] = self._send_serving(
                    shard, method, [codes[i] for i in rows], codec,
                    [enc[i] for i in rows] if enc is not None else None)
        # ring the doorbells only now, outside the route lock and after
        # the whole fan-out is pushed: a wakeup can preempt this thread
        # on a shared core, and doing that mid-loop would serialize the
        # dispatch (and hand a worker the CPU while we hold the lock)
        for shard in tokens:
            self._ring_doorbell(shard)
        out: List = [None] * len(codes)
        failures: List[str] = []
        faulted: List[Tuple[int, List[int]]] = []
        for shard, rows in by_shard.items():
            try:
                status, result = self._collect(tokens[shard])
            except DeadlineExceeded:
                with self._meta_lock:
                    self._deadline_exceeded += 1
                faulted.append((shard, rows))
                continue
            except RuntimeError:
                with self._meta_lock:
                    self._faults += 1
                faulted.append((shard, rows))
                continue
            if status == "fault":
                # transport-level corruption or a stale codec tag: count
                # it, drop the (possibly outdated) codec, and retry the
                # sub-batch — the retry re-encodes under a fresh codec
                with self._meta_lock:
                    self._faults += 1
                self._invalidate_codec()
                faulted.append((shard, rows))
                continue
            if status != "ok":
                failures.append(f"shard {shard} failed: {result}")
                continue
            if not _well_formed(result, len(rows)):
                with self._meta_lock:  # garbled IPC payload, not an answer
                    self._faults += 1
                faulted.append((shard, rows))
                continue
            if self._lat_window is not None:
                # per-snippet round-trip latency of this sub-batch (queue
                # wait + forward pass) — the autoscaler's slow-model signal
                elapsed = time.monotonic() - tokens[shard].sent_at
                self._lat_window.push(elapsed * 1e3 / max(1, len(rows)))
            for i, value in zip(rows, result):
                out[i] = value
        if failures:
            raise RuntimeError("; ".join(failures))
        for shard, rows in faulted:
            sub = [codes[i] for i in rows]
            result = self._retry_subbatch(method, sub, exclude=shard)
            if result is None:
                result = self._degraded_result(method, len(rows))
            for i, value in zip(rows, result):
                out[i] = value
        return out

    # -- fault handling ----------------------------------------------------

    def _request_deadline(self) -> Optional[float]:
        """Absolute (monotonic) deadline for a serving request sent now."""
        timeout = self.supervisor.request_timeout_s
        return None if timeout is None else time.monotonic() + timeout

    def _retry_subbatch(self, method: str, sub: List[str],
                        exclude: int) -> Optional[List]:
        """One retry of a faulted sub-batch: a live shard other than
        ``exclude`` first, the in-process fallback engine second.

        Returns the results, or ``None`` when nothing could answer (the
        caller falls back to degraded verdicts).  The retry re-fetches
        the codec and re-encodes from scratch — when the original
        sub-batch faulted on a stale codec tag (a racing reload), the
        fresh encoding is exactly what makes the retry succeed."""
        with self._meta_lock:
            self._retries += 1
        token = None
        codec = self._serving_codec()
        enc = (self._encode_batch(codec, sub,
                                  [source_digest(code) for code in sub])
               if codec is not None else None)
        with self._route_lock:
            if not self._closed:
                n = self.n_shards
                target = next(
                    (s for s in ((exclude + k) % n for k in range(1, n))
                     if self._workers[s].is_alive()), None)
                if target is not None:
                    token = self._send_serving(target, method, sub,
                                               codec, enc)
        if token is not None:
            self._ring_doorbell(token.shard)
            try:
                status, result = self._collect(token)
                if status == "ok" and _well_formed(result, len(sub)):
                    return list(result)
                if status == "fault":
                    with self._meta_lock:
                        self._faults += 1
                    self._invalidate_codec()
            except DeadlineExceeded:
                with self._meta_lock:
                    self._deadline_exceeded += 1
            except RuntimeError:
                with self._meta_lock:
                    self._faults += 1
        fallback = self._fallback()
        if fallback is not None:
            try:
                result = list(getattr(fallback, method)(sub))
                with self._meta_lock:
                    self._fallback_answers += len(sub)
                return result
            except Exception:  # noqa: BLE001 — fall through to degraded
                pass
        return None

    def _fallback(self):
        """The lazily built in-process last-resort engine (or ``None``).

        Built from the same factory as the workers, in the parent, the
        first time a faulted sub-batch cannot be retried on any live
        shard.  A factory that itself raises (the crash-looping
        checkpoint being the reason the fleet is down) is remembered and
        not retried — callers then get degraded verdicts."""
        with self._fallback_lock:
            if self._fallback_engine is None and not self._fallback_failed:
                try:
                    self._fallback_engine = self._factory()
                except Exception:  # noqa: BLE001 — degraded verdicts instead
                    self._fallback_failed = True
            return self._fallback_engine

    def _degraded_result(self, method: str, count: int) -> List:
        """Explicit neutral verdicts for ``count`` unanswerable snippets.

        ``p = 0.5`` / ``needs_directive = False`` with ``degraded=True``
        set — visibly *not* a model prediction, but a well-formed answer
        the HTTP layer can serialize, so a fleet-wide outage sheds
        accuracy instead of availability."""
        with self._meta_lock:
            self._degraded_answers += count
        return self._neutral_result(method, count)

    def _neutral_result(self, method: str, count: int) -> List:
        """Shape-only neutral verdicts — no counter side effects.

        Shared by :meth:`_degraded_result` (fault path, counted in
        ``degraded_answers``) and the router-side dirty-input rejection
        path (counted separately in ``router_rejected``, because
        ``degraded_answers == 0`` is a fault-injection gate and an
        oversize snippet is not a fault)."""
        if method == "predict_proba":
            return [np.full(2, 0.5, dtype=get_dtype()) for _ in range(count)]
        if method == "advise_many":
            return [Advice(0.5, False, degraded=True) for _ in range(count)]
        if method == "advise_full_many":
            from repro.serve.registry import FullAdvice

            return [FullAdvice(Advice(0.5, False, degraded=True), {},
                               degraded=True) for _ in range(count)]
        raise RuntimeError(f"no neutral verdict for method {method!r}")

    # -- supervision -------------------------------------------------------

    def _supervise_loop(self) -> None:
        """Daemon supervisor: one :meth:`_check_fleet` pass per
        ``heartbeat_interval_s`` tick until the engine closes.  The pass
        is exception-proofed — the supervisor surviving is the whole
        point of having one."""
        interval = self.supervisor.heartbeat_interval_s
        while not self._stop_supervisor.wait(interval):
            try:
                self._check_fleet()
            except Exception:  # noqa: BLE001 — supervision must survive
                pass

    def _check_fleet(self) -> None:
        """One supervision pass over the active slots.

        A slot whose process died is revived (subject to its backoff
        schedule).  A live slot is pinged over the normal reply plumbing
        with a ``heartbeat_timeout_s`` deadline; because the worker loop
        is single-threaded, a worker wedged inside a serving call cannot
        answer — a missed ping means *hung*, and the only recovery is to
        terminate the process and revive the slot.  A slot that answers
        its ping is healthy: its restart budget and degraded flag reset.
        """
        cfg = self.supervisor
        for index in range(self.n_shards):
            with self._route_lock:
                if self._closed or index >= self.n_shards:
                    return
                proc = self._workers[index]
            if not proc.is_alive():
                self._revive(index)
                continue
            try:
                token = self._send(
                    index, "ping", None,
                    deadline=time.monotonic() + cfg.heartbeat_timeout_s,
                    tracked=False)
            except RuntimeError:  # closed mid-pass
                return
            try:
                status, _ = self._collect(token)
            except DeadlineExceeded:
                # alive but wedged — stuck forward pass, deadlock, chaos
                # hang; terminating it is the only way to free the slot
                proc.terminate()
                proc.join(timeout=1.0)
                self._revive(index)
            except RuntimeError:  # died while we waited
                self._revive(index)
            else:
                if status == "ok":
                    self._slot_restarts[index] = 0
                    self._slot_degraded[index] = False

    def _revive(self, index: int) -> None:
        """Respawn the dead worker in slot ``index``.

        Serialized against autoscaler grows via ``_resizing`` and paced
        by the slot's exponential-backoff schedule.  The respawn replays
        the remembered reload spec and any live canary — identical to the
        autoscaler's replay-at-spawn path — so a revived worker serves
        the fleet's current weights, not the factory's.  Once
        ``restart_budget`` consecutive revives have failed the slot is
        marked *degraded*: retries slow to the capped backoff and the
        in-process fallback engine is warmed so traffic the dead slot
        owned still gets real answers.
        """
        cfg = self.supervisor
        now = time.monotonic()
        with self._route_lock:
            if (self._closed or self._resizing or index >= self.n_shards
                    or self._workers[index].is_alive()
                    or now < self._slot_next_retry[index]):
                return
            self._resizing = True
            reload_spec = self._reload_spec
            canary_spec = self._canary_spec
        try:
            with self._meta_lock:
                self._faults += 1
            attempt = self._slot_restarts[index]
            self._slot_restarts[index] = attempt + 1
            self._slot_next_retry[index] = now + cfg.backoff(attempt)
            if attempt >= cfg.restart_budget:
                # crash loop: degrade the slot instead of flapping, and
                # make sure the fallback engine is ready to answer for it
                self._slot_degraded[index] = True
                self._slot_next_retry[index] = (
                    now + cfg.restart_backoff_max_s)
                self._fallback()
            started = self._start_worker(index, reload_spec, canary_spec)
            if started is None:  # pragma: no cover — retired, draining
                return
            with self._route_lock:
                if self._closed:  # closed while spawning: stop the orphan
                    started[1].put(_STOP)
                    if started[4] is not None:
                        started[4][0].release()
                    return
                self._install_worker(index, started)
            with self._meta_lock:
                self._restarts += 1
        finally:
            self._resizing = False

    # -- autoscaling -------------------------------------------------------

    def _observe_load(self) -> None:
        """Sample the backlog this call arrives into, then maybe resize.

        The sample is taken *before* this call's own sends, so it measures
        contention from other in-flight callers: sequential traffic
        samples zero (scale down), concurrent bursts sample the queue the
        burst is building (scale up)."""
        if self._window is None:
            return
        with self._meta_lock:
            n = self.n_shards
            backlog = sum(self._depth[:n])
        self._window.push(backlog / n)
        self._maybe_autoscale()

    def _latency_signal(self) -> Tuple[float, bool]:
        """``(mean per-snippet ms, above-watermark?)`` of the latency
        window; ``(0.0, False)`` when the signal is disabled or not yet
        full."""
        cfg = self.autoscale
        if (self._lat_window is None or cfg is None
                or cfg.latency_high_ms is None):
            return 0.0, False
        mean = self._lat_window.mean()
        return mean, self._lat_window.full and mean > cfg.latency_high_ms

    def _maybe_autoscale(self) -> None:
        """Apply the resize rule when the window is full and cooled down.

        Growth fires on either signal — deep queues (concurrent burst) or
        high per-snippet latency (slow model, see
        ``AutoscaleConfig.latency_high_ms``); shrinking requires an idle
        queue *and* a latency window below the watermark.

        Shrinking is cheap (retire the top slot) and completes under
        ``_route_lock`` on the calling thread.  Growing spawns a process,
        which can take seconds — exactly when the fleet is backlogged —
        so it is handed to a short-lived background thread (``_resizing``
        serializes grows) and the sampling request continues unstalled;
        only the final publish of the new slot takes the lock.
        """
        cfg = self.autoscale
        if cfg is None or self._closed or not self._window.full:
            return
        if time.monotonic() - self._last_resize_at < cfg.cooldown_s:
            return
        with self._route_lock:
            # re-check under the lock: another caller may just have resized
            # (clearing the window) or the cooldown may have restarted
            if (self._closed or self._resizing or not self._window.full
                    or time.monotonic() - self._last_resize_at < cfg.cooldown_s):
                return
            mean = self._window.mean()
            lat_mean, lat_slow = self._latency_signal()
            if ((mean > cfg.high_watermark or lat_slow)
                    and self.n_shards < cfg.max_shards):
                if mean > cfg.high_watermark:
                    reason = (f"mean queue depth {mean:.2f} > "
                              f"high watermark {cfg.high_watermark}")
                else:
                    reason = (f"mean per-snippet latency {lat_mean:.2f} ms > "
                              f"latency watermark {cfg.latency_high_ms} ms")
                self._resizing = True
                threading.Thread(
                    target=self._grow,
                    args=(self.n_shards, self._reload_spec,
                          self._canary_spec, reason),
                    name="advisor-autoscale-grow", daemon=True).start()
            elif (mean < cfg.low_watermark and not lat_slow
                  and self.n_shards > cfg.min_shards):
                # shrink: the retiring slot leaves the routing set first,
                # then receives _STOP — queue FIFO ordering (and the ring
                # worker's drain-on-STOP) means sub-batches already sent
                # are answered before the worker exits
                retiring = self.n_shards - 1
                self._requests[retiring].put(_STOP)
                self._ring_doorbell(retiring)
                self.n_shards = retiring
                self._note_resize(retiring + 1, retiring,
                                  f"mean queue depth {mean:.2f} < "
                                  f"low watermark {cfg.low_watermark}")

    def _grow(self, index: int, reload_spec: Optional[Tuple[str, str]],
              canary_spec: Optional[Tuple[str, float, str]],
              reason: str) -> None:
        """Background grow: spawn, publish, catch up on racing rollouts.

        ``reload_spec`` / ``canary_spec`` were snapshotted under
        ``_route_lock`` when this grow was scheduled; a reload or canary
        broadcast landing between then and the publish only reaches the
        *published* slots, so after installing we re-check both specs and
        send the new worker catch-up messages — in rollout order: drop a
        canary that ended (its promote, if any, shows up as a changed
        reload spec), replay the reload, then start a canary that began.
        A catch-up failure leaves the worker serving its spawn-time
        weights — alive but with a divergent ``model_version`` visible in
        :meth:`stats`.
        """
        catchups: List[_Token] = []
        try:
            started = self._start_worker(index, reload_spec, canary_spec)
            if started is None:
                return  # retired slot still draining; a later tick retries
            with self._route_lock:
                if self._closed:  # closed while preparing: stop the orphan
                    started[1].put(_STOP)
                    if started[4] is not None:
                        started[4][0].release()
                    return
                self._install_worker(index, started)
                self.n_shards = index + 1
                self._note_resize(index, index + 1, reason)
                msgs: List[Tuple[str, object]] = []
                canary_changed = self._canary_spec != canary_spec
                if canary_changed and canary_spec is not None:
                    msgs.append(("canary_rollback", None))
                if (self._reload_spec is not None
                        and self._reload_spec != reload_spec):
                    msgs.append(("reload", self._reload_spec))
                if canary_changed and self._canary_spec is not None:
                    msgs.append(("start_canary", self._canary_spec))
                catchups = [self._send(index, method, payload)
                            for method, payload in msgs]
        finally:
            self._resizing = False
        for catchup in catchups:
            try:
                self._collect(catchup)
            except RuntimeError:  # pragma: no cover — worker died at start
                pass

    def _note_resize(self, old: int, new: int, reason: str) -> None:
        """Record one resize and restart the hysteresis clocks."""
        self._resizes += 1
        self._last_resize = {"from": old, "to": new, "reason": reason,
                             "at": round(time.time(), 3)}
        self._last_resize_at = time.monotonic()
        self._window.clear()
        if self._lat_window is not None:
            self._lat_window.clear()

    # -- bulk APIs ---------------------------------------------------------

    def predict_proba(self, codes: Sequence[str]) -> np.ndarray:
        """(N, 2) directive probabilities, sharded and order-preserving."""
        rows = self._scatter_call("predict_proba", codes)
        if not rows:
            # compute dtype, not np.empty's float64 default — the sharded
            # path must stay as float32-pure as the in-process engine
            return np.empty((0, 2), dtype=get_dtype())
        return np.stack([np.asarray(row) for row in rows])

    def advise_many(self, codes: Sequence[str]) -> List[Advice]:
        """Bulk directive advice across shards."""
        return self._scatter_call("advise_many", codes)

    def advise(self, code: str) -> Advice:
        """Single-snippet directive advice (routed like any other)."""
        return self.advise_many([code])[0]

    def advise_full_many(self, codes: Sequence[str]) -> List:
        """Bulk combined directive+clause advice (workers must host a
        :class:`~repro.serve.registry.MultiModelEngine`)."""
        return self._scatter_call("advise_full_many", codes)

    def advise_full(self, code: str):
        """Single-snippet combined advice."""
        return self.advise_full_many([code])[0]

    def advise_v1(self, requests: Sequence) -> List["AdviceResult"]:
        """The v1 advice surface over the fleet: a batch of
        :class:`~repro.serve.api.AdviceRequest` (or bare snippet strings)
        in, :class:`~repro.serve.api.AdviceResult` out, with the
        operational context only the router knows stitched on — which
        arm a live canary routed each snippet to, the fleet-wide
        ``model_version``, and the ``recovered`` flag (on the
        shared-memory transport workers see pre-encoded rows, so lexing
        recovery is observed router-side and stamped here)."""
        reqs = [AdviceRequest.of(r) for r in requests]
        if not reqs:
            return []
        if self._local is not None:
            advise_v1 = getattr(self._local, "advise_v1", None)
            if advise_v1 is not None:
                return advise_v1(reqs)
        if any(r.code is None for r in reqs):
            raise ValueError(
                "the sharded router owns encoding; submit AdviceRequest "
                "with code=, not pre-encoded ids=")
        codes = [r.code for r in reqs]
        fulls = self.advise_full_many(codes)
        digests = [source_digest(code) for code in codes]
        with self._codec_lock:
            router_recovered = [
                self._recovered_digests.get(digest) is not None
                for digest in digests]
        with self._route_lock:
            spec = self._canary_spec
            primary_version = self._model_version
        if spec is not None:
            from repro.serve.registry import canary_routes_digest
        results: List[AdviceResult] = []
        for req, full, digest, rec in zip(reqs, fulls, digests,
                                          router_recovered):
            canary = (spec is not None
                      and canary_routes_digest(digest, spec[1]))
            result = AdviceResult.from_full(
                full,
                model_version=spec[2] if canary else primary_version,
                arm="canary" if canary else "primary",
                id=req.id)
            if rec and not result.recovered:
                from dataclasses import replace
                result = replace(result, recovered=True)
            results.append(result)
        return results

    # -- one-copy weight segments ------------------------------------------

    def _publish_weights(self, path: str):
        """Map ``path``'s weight blob into a fresh parent-owned shared
        segment for a rollout; ``None`` when sharing is off, the
        checkpoint predates blob manifests, or mapping fails — workers
        then fall back to eager per-process deserialization, trading
        memory for availability."""
        if not self._share_weights or self._local is not None:
            return None
        try:
            from repro.models.persistence import share_weights
            shared = share_weights(path)
        except (ValueError, OSError):
            return None
        if shared is not None:
            with self._route_lock:
                self._all_weights.append(shared)
        return shared

    def _retire_segment(self, shared) -> None:
        """Unlink a segment that is no longer current.  POSIX drain
        semantics do the rest: workers still holding a mapping keep
        their pages until they close or die, but nothing can attach the
        retired name again — exactly what a superseded model version
        needs."""
        if shared is None:
            return
        try:
            shared.close()
        except Exception:  # noqa: BLE001 — exported views pin the buffer
            pass
        try:
            shared.unlink()
        except Exception:  # noqa: BLE001 — already unlinked
            pass

    def _unlink_weights(self) -> None:
        """Close-and-unlink every weight segment this engine ever
        created, current or retired — the parent owns them all
        (mirroring ``_all_rings``) precisely so /dev/shm ends clean even
        when workers died holding a mapping."""
        for shared in self._all_weights:
            try:
                shared.close()
            except Exception:  # noqa: BLE001 — best-effort teardown
                pass
        for shared in self._all_weights:
            try:
                shared.unlink()
            except Exception:  # noqa: BLE001 — already unlinked
                pass

    # -- hot reload --------------------------------------------------------

    def reload(self, path) -> Optional[str]:
        """Broadcast a checkpoint reload to every active worker.

        Workers must host an engine exposing ``reload(path, version=...)``
        (a :class:`~repro.serve.registry.MultiModelEngine`); each swaps
        its heads atomically as described there, all under **one**
        parent-issued version tag so the whole fleet — including workers
        the autoscaler spawns later, which replay the reload at startup —
        reports the same ``model_version``.  Raises if any worker fails —
        the error names the shards, shards that did reload keep the new
        weights (re-issue the reload after fixing the checkpoint), and
        the remembered replay spec reverts to the last *fully successful*
        reload so future grown workers never start from a known-bad
        checkpoint.  Returns the new version tag.
        """
        path = str(path)
        if self._closed:
            raise RuntimeError("sharded engine is closed")
        if self._canary_spec is not None:
            raise RuntimeError(
                f"canary {self._canary_spec[2]} is active; promote() or "
                "rollback() it before reloading the primary")
        if self._local is not None:
            reload_fn = getattr(self._local, "reload", None)
            if reload_fn is None:
                raise RuntimeError(
                    "local engine does not support reload(path)")
            version = reload_fn(path)
            self._reload_spec = (path, version, None)
            return version
        # publish the checkpoint blob into one shared segment *before*
        # broadcasting, so every worker maps the same copy instead of
        # re-deserializing the checkpoint N times
        shared = self._publish_weights(path)
        segment = None if shared is None else shared.name
        with self._route_lock:
            self._reload_count += 1
            version = f"v{self._reload_count}:{Path(path).name}"
            tokens = [self._send(shard, "reload", (path, version, segment))
                      for shard in range(self.n_shards)]
            # remembered under the lock: a grow racing this reload either
            # sees the spec (and replays it) or got a broadcast token
            previous_spec = self._reload_spec
            self._reload_spec = (path, version, segment)
        # the version tag changed: ring frames must stop carrying the old
        # codec tag.  In-flight stale frames fault-and-retry harmlessly.
        self._invalidate_codec()
        failures: List[str] = []
        for shard, token in enumerate(tokens):
            try:
                status, result = self._collect(token)
            except RuntimeError as exc:
                failures.append(str(exc))
                continue
            if status != "ok":
                failures.append(f"shard {shard} failed: {result}")
        if failures:
            with self._route_lock:
                # don't poison future grown workers with a bad checkpoint
                if self._reload_spec == (path, version, segment):
                    self._reload_spec = previous_spec
            # shards that did reload keep their mapping (POSIX drain);
            # nobody new should attach a known-bad rollout's segment
            self._retire_segment(shared)
            raise RuntimeError("; ".join(failures))
        with self._route_lock:
            old, self._weights_primary = self._weights_primary, shared
            self._model_version = version
        if old is not shared:
            # the retired primary: unlinked now, freed when the last
            # worker snapshot holding it drains
            self._retire_segment(old)
        return version

    # -- canary rollout ----------------------------------------------------

    def _broadcast(self, method: str, payload) -> List[str]:
        """Send ``method`` to every active shard and collect the failures
        (caller holds no locks; sends happen under ``_route_lock``)."""
        with self._route_lock:
            tokens = [self._send(shard, method, payload)
                      for shard in range(self.n_shards)]
        failures: List[str] = []
        for shard, token in enumerate(tokens):
            try:
                status, result = self._collect(token)
            except RuntimeError as exc:
                failures.append(str(exc))
                continue
            if status != "ok":
                failures.append(f"shard {shard} failed: {result}")
        return failures

    def start_canary(self, path, fraction: float,
                     version: Optional[str] = None) -> str:
        """Broadcast a canary rollout to every active worker.

        Workers must host an engine exposing ``start_canary`` (a
        :class:`~repro.serve.registry.MultiModelEngine`); the parent
        issues **one** version tag so the whole fleet — including workers
        the autoscaler grows mid-rollout, which replay the canary at
        spawn — agrees on the rollout's identity, and the digest-based
        arm split is identical on every worker by construction.  If any
        worker fails to start, the rollout is rolled back everywhere and
        the error raised — a traffic split only some shards honour is
        never left serving.  Returns the canary version tag.

        Promotion policies stay engine-level: in a fleet the operator (or
        an external controller watching ``/stats``) decides, then calls
        :meth:`promote` / :meth:`rollback` to move every worker at once.
        """
        path = str(path)
        if self._closed:
            raise RuntimeError("sharded engine is closed")
        if self._local is not None:
            version = self._local.start_canary(path, fraction,
                                               version=version)
            self._canary_spec = (path, fraction, version, None)
            return version
        shared = self._publish_weights(path)
        segment = None if shared is None else shared.name
        try:
            with self._route_lock:
                if self._canary_spec is not None:
                    raise RuntimeError(
                        f"canary {self._canary_spec[2]} already active; "
                        "promote() or rollback() it first")
                self._reload_count += 1
                if version is None:
                    version = f"v{self._reload_count}:{Path(path).name}"
                spec = (path, float(fraction), version, segment)
                tokens = [self._send(shard, "start_canary", spec)
                          for shard in range(self.n_shards)]
                self._canary_spec = spec
                self._weights_canary = shared
        except BaseException:
            # refused (canary already active) or the broadcast itself
            # blew up before the spec was remembered: drop the segment
            self._retire_segment(shared)
            raise
        failures: List[str] = []
        for shard, token in enumerate(tokens):
            try:
                status, result = self._collect(token)
            except RuntimeError as exc:
                failures.append(str(exc))
                continue
            if status != "ok":
                failures.append(f"shard {shard} failed: {result}")
        if failures:
            try:  # drop the partial rollout everywhere, then report
                self.rollback()
            except RuntimeError:  # pragma: no cover — rollback best-effort
                pass
            raise RuntimeError("; ".join(failures))
        return version

    def promote(self) -> str:
        """Broadcast canary promotion: every worker atomically makes the
        canary its primary (see ``MultiModelEngine.promote``), and the
        remembered reload spec moves to the promoted checkpoint so
        workers grown later replay it.  Raises with no canary active, or
        naming the shards that failed.  On a partial failure the canary
        spec is *kept*: shards that promoted hold the new weights, and
        re-issuing ``promote()`` converges the rest (already-promoted
        workers answer "no canary active", which is tolerated — the
        rollout is never left wedged with no API path to finish it).
        Returns the promoted version tag."""
        if self._closed:
            raise RuntimeError("sharded engine is closed")
        with self._route_lock:
            if self._canary_spec is None:
                raise RuntimeError("no canary active")
            path, _, version, segment = self._canary_spec
        if self._local is not None:
            result = self._local.promote()
            with self._route_lock:
                self._reload_spec = (path, version, segment)
                self._canary_spec = None
            return result
        failures = [f for f in self._broadcast("canary_promote", None)
                    if "no canary active" not in f]
        self._invalidate_codec()   # promoted canary owns the version tag now
        if failures:
            raise RuntimeError("; ".join(failures))
        with self._route_lock:
            self._reload_spec = (path, version, segment)
            self._canary_spec = None
            # the canary segment *is* the new primary: promotion is just
            # a pointer flip, no new mapping anywhere in the fleet
            old = self._weights_primary
            self._weights_primary = self._weights_canary
            self._weights_canary = None
            self._model_version = version
        if old is not self._weights_primary:
            self._retire_segment(old)
        return version

    def rollback(self) -> None:
        """Broadcast canary rollback: every worker drops its canary arm
        and keeps serving the primary untouched.  Idempotent per shard —
        a worker that never started (or already dropped) its canary is
        not an error, so a partially started rollout can always be
        cleaned up.  Like :meth:`promote`, a partial failure keeps the
        canary spec so the rollback can simply be re-issued."""
        if self._closed:
            raise RuntimeError("sharded engine is closed")
        with self._route_lock:
            if self._canary_spec is None and self._local is None:
                raise RuntimeError("no canary active")
        if self._local is not None:
            self._local.rollback()
            with self._route_lock:
                self._canary_spec = None
            return
        failures = [f for f in self._broadcast("canary_rollback", None)
                    if "no canary active" not in f]
        if failures:
            raise RuntimeError("; ".join(failures))
        with self._route_lock:
            self._canary_spec = None
            old, self._weights_canary = self._weights_canary, None
        self._retire_segment(old)

    # -- observability -----------------------------------------------------

    def head_names(self) -> List[str]:
        """Model heads hosted by the workers (asked of shard 0 — every
        worker is built by the same factory); empty for single-model
        engines."""
        if self._local is not None:
            return _head_names(self._local)
        status, result = self._collect(
            self._send(0, "heads", None, deadline=self._request_deadline()))
        if status != "ok":
            raise RuntimeError(f"shard 0 failed: {result}")
        return result

    def queue_depth(self) -> List[int]:
        """Per-active-shard count of requests sent but not yet answered."""
        with self._meta_lock:
            return list(self._depth[:self.n_shards])

    def stats(self) -> Dict[str, object]:
        """Aggregate + per-shard serving metrics.

        Shape: ``{"n_shards", "routed": [per-slot request counts],
        "queue_depth": [in-flight requests per active shard], "shards":
        [per-worker engine snapshots], "combined": merged counters}`` —
        plus ``"model_version"`` when the workers report one, a
        ``"canary"`` block (version, fraction, per-arm counters summed
        across workers, and ``shards_live`` — how many workers host the
        canary) when one is rolling out, and an ``"autoscaler"`` block
        (bounds, current shards, resize count, last resize with its
        reason, latency watermark + window mean when the latency signal
        is on) when autoscaling is on, and always a ``"supervisor"``
        block with the fault-tolerance counters (``restarts``, ``faults``,
        ``deadline_exceeded``, ``retries``, ``degraded_answers``,
        ``fallback_answers``, ``router_rejected``, ``degraded_shards``).
        A dead or wedged
        shard contributes an ``{"error": ...}`` placeholder instead of
        failing the whole snapshot — /stats is the tool for diagnosing a
        broken fleet and must keep working while the fleet is broken.
        JSON-ready.
        """
        if self._local is not None:
            shards = [snapshot_stats(self._local)]
        else:
            shards = self._scatter_stats()
        # error placeholders carry no counters: aggregate over healthy only
        healthy = [s for s in shards
                   if isinstance(s, dict) and "error" not in s]
        flat = [s.get("combined", s) for s in healthy]
        with self._meta_lock:
            routed = list(self.routed)
        out: Dict[str, object] = {
            "n_shards": self.n_shards,
            "routed": routed,
            "queue_depth": self.queue_depth(),
            "shards": shards,
            "combined": merge_stat_dicts(
                f for f in flat if isinstance(f, dict)),
        }
        first = next(iter(healthy), None)
        if isinstance(first, dict) and "model_version" in first:
            out["model_version"] = first["model_version"]
        if isinstance(first, dict) and "canary" in first:
            live = [s["canary"] for s in healthy
                    if isinstance(s, dict) and s.get("canary")]
            out["canary"] = None if not live else {
                "version": live[0]["version"],
                "fraction": live[0]["fraction"],
                "shards_live": len(live),
                "arms": {
                    arm: merge_arm_stats(c["arms"][arm] for c in live)
                    for arm in ("primary", "canary")
                },
            }
            out["last_canary"] = next(
                (s["last_canary"] for s in shards
                 if isinstance(s, dict) and s.get("last_canary")), None)
        if self.autoscale is not None:
            out["autoscaler"] = {
                "min_shards": self.autoscale.min_shards,
                "max_shards": self.autoscale.max_shards,
                "current_shards": self.n_shards,
                "resizes": self._resizes,
                "last_resize": self._last_resize,
                "window_mean": round(self._window.mean(), 3),
            }
            if self._lat_window is not None:
                out["autoscaler"]["latency_high_ms"] = (
                    self.autoscale.latency_high_ms)
                out["autoscaler"]["window_latency_mean_ms"] = round(
                    self._lat_window.mean(), 3)
        with self._meta_lock:
            out["supervisor"] = {
                "request_timeout_s": self.supervisor.request_timeout_s,
                "restarts": self._restarts,
                "faults": self._faults,
                "deadline_exceeded": self._deadline_exceeded,
                "retries": self._retries,
                "degraded_answers": self._degraded_answers,
                "fallback_answers": self._fallback_answers,
                "router_rejected": self._rejected_snippets,
                "degraded_shards": int(
                    sum(self._slot_degraded[:self.n_shards])),
            }
            active = ("local" if self._local is not None else
                      "shm" if self.ipc == "shm" and not self._ring_disabled
                      else "queue")
            out["ipc"] = {
                "requested": self.ipc,
                "active": active,
                "ring_sends": self._ring_sends,
                "ring_overflows": self._ring_overflows,
                "queue_serving_sends": self._queue_serving_sends,
            }
            if self.ipc == "shm":
                out["ipc"]["ring_slots"] = self._ring_slots
                out["ipc"]["ring_slot_words"] = self._ring_slot_words
        with self._route_lock:
            out["weights"] = {
                "sharing": self._share_weights and self._local is None,
                "mode": ("shared" if self._weights_primary is not None
                         else "private"),
                "primary_segment": (None if self._weights_primary is None
                                    else self._weights_primary.name),
                "canary_segment": (None if self._weights_canary is None
                                   else self._weights_canary.name),
                "segments_created": len(self._all_weights),
            }
        return out

    def _scatter_stats(self) -> List[Dict[str, object]]:
        """Per-worker stats snapshots, fault-tolerantly: a shard that is
        dead, wedged past the request deadline, or erroring contributes
        an ``{"error": ...}`` placeholder so the rest of the fleet still
        reports."""
        with self._route_lock:
            tokens = [self._send(shard, "stats", None,
                                 deadline=self._request_deadline())
                      for shard in range(self.n_shards)]
        snapshots: List[Dict[str, object]] = []
        for shard, token in enumerate(tokens):
            try:  # collect every live shard even if one died
                status, result = self._collect(token)
            except RuntimeError as exc:  # includes DeadlineExceeded
                snapshots.append({"error": str(exc)})
                continue
            if status != "ok" or not isinstance(result, dict):
                snapshots.append({"error": f"shard {shard}: {result}"})
            else:
                snapshots.append(result)
        return snapshots

    # -- lifecycle ---------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Stop all workers (idempotent); the engine is unusable after.

        Fault-tolerant by design: already-dead workers are reaped without
        raising, all joins share one ``timeout`` budget (a fleet of stuck
        workers cannot multiply it), workers that refuse to exit are
        terminated, and the queues are always released — close() must
        succeed on exactly the broken fleets the chaos tests create.
        """
        if self._closed:
            return
        self._closed = True
        self._stop_supervisor.set()
        if self._supervisor_thread is not None:
            self._supervisor_thread.join(timeout=1.0)
        with self._fallback_lock:
            fallback, self._fallback_engine = self._fallback_engine, None
        if fallback is not None:
            fb_close = getattr(fallback, "close", None)
            if fb_close is not None:
                try:
                    fb_close()
                except Exception:  # noqa: BLE001 — best-effort teardown
                    pass
        if self._local is not None:
            close = getattr(self._local, "close", None)
            if close is not None:
                close()
            self._unlink_weights()
            return
        with self._route_lock:
            workers = list(self._workers)
            requests = list(self._requests)
            responses = list(self._responses)
        for shard, req in enumerate(requests):
            try:  # a dead worker's full pipe must not wedge close()
                req.put_nowait(_STOP)
            except Exception:  # noqa: BLE001 — queue broken or full
                pass
            try:
                self._ring_doorbell(shard)
            except Exception:  # noqa: BLE001 — best-effort wakeup
                pass
        deadline = time.monotonic() + timeout
        for proc in workers:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():  # stuck worker: the budget is spent
                proc.terminate()
                proc.join(timeout=1.0)
        for q in (*requests, *responses):
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:  # noqa: BLE001 — already closed
                pass
        # unlink every shared-memory segment ever created, including the
        # rings of workers that died holding a slot — the parent owns all
        # segments precisely so /dev/shm is clean after close() no matter
        # what state the fleet died in
        for ring in self._all_rings:
            try:
                ring.close()
            except Exception:  # noqa: BLE001 — best-effort teardown
                pass
        for ring in self._all_rings:
            try:
                ring.unlink()
            except Exception:  # noqa: BLE001 — already unlinked
                pass
        # same contract for the one-copy weight segments: workers that
        # died holding a mapping cannot leak /dev/shm bytes past close()
        self._unlink_weights()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
