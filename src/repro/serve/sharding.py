"""Multi-worker sharding: partition bulk advisor traffic across processes.

The NumPy engine is single-process compute-bound, so past one core the only
way to scale throughput is more processes.  :class:`ShardedEngine` runs N
worker processes (stdlib :mod:`multiprocessing`, no extra deps), each
hosting its own engine built by a caller-supplied zero-argument factory:

* **Digest-hash routing** — a snippet is routed by
  ``blake2b(code) % n_shards``, so the *same* snippet always lands on the
  *same* worker and that worker's prediction LRU and tokenize memo stay hot
  (random routing would cut every cache's effective hit rate by 1/N).
* **Bulk fan-out** — one :meth:`predict_proba` / :meth:`advise_full_many`
  call splits its codes by shard, sends each worker one sub-batch, and the
  workers run concurrently; results are scattered back into request order.
* **Concurrent callers** — replies are tagged with request ids, so multiple
  threads (e.g. HTTP handler threads) can have calls in flight at once;
  calls touching disjoint shards proceed fully in parallel.
* **Graceful fallback** — ``n_shards=1`` (without autoscaling) builds the
  engine in-process and skips multiprocessing entirely (same API, zero IPC
  overhead), so callers can treat the shard count as a pure tuning knob.
* **Load-signal autoscaling** — with an :class:`AutoscaleConfig`, the
  engine samples the in-flight backlog each call into a rolling window and
  grows/shrinks the active worker count between ``min_shards`` and
  ``max_shards``.  With ``latency_high_ms`` set, a second rolling window
  over per-snippet round-trip latency also triggers growth — a slow model
  saturates its workers long before the queue deepens, and latency is the
  signal that sees it.  Routing stays consistent on resize (always
  ``digest % n_shards`` over the *active* count), growth replays the last
  hot-reload (and any live canary) so new workers never serve stale
  weights, and hysteresis (full-window gate + cooldown) keeps the fleet
  from flapping.
* **Hot reload** — :meth:`reload` broadcasts an advisor-checkpoint swap to
  every active worker (workers must host an engine exposing
  ``reload(path)``, e.g. :class:`~repro.serve.registry.MultiModelEngine`).
* **Canary rollout** — :meth:`start_canary` / :meth:`promote` /
  :meth:`rollback` broadcast the registry-level canary deployment to
  every worker under one parent-issued version tag; because arm
  assignment is a pure digest hash, every worker splits traffic
  identically, and workers the autoscaler grows mid-rollout replay the
  canary at spawn.
* **Observability** — :meth:`stats` aggregates every worker's engine
  counters and reports per-shard routed-request counts, live queue depths
  (requests sent but not yet answered), the deployed model version, and
  the autoscaler's state (current shards, last resize and its reason).

Workers are started with the ``fork`` start method when the platform
offers it (the factory may close over live models — fork shares their
memory copy-on-write); otherwise ``spawn`` is used and the factory must be
picklable (a module-level function or :func:`functools.partial` of one).
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import queue as queue_mod
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.nn.dtype import get_dtype
from repro.serve.engine import Advice, source_digest
from repro.serve.metrics import RollingMean, merge_arm_stats, merge_stat_dicts

__all__ = ["AutoscaleConfig", "ShardedEngine", "shard_of", "snapshot_stats"]

_STOP = "stop"


def _route_key(code: str) -> int:
    """Shard-count-independent routing hash for a snippet (blake2b-based,
    stable across processes and runs, unlike the per-process-salted
    ``hash()``).  ``_route_key(code) % n_shards`` is the shard index —
    split out so bulk callers can hash outside the routing lock."""
    return int.from_bytes(source_digest(code, size=8), "big")


def shard_of(code: str, n_shards: int) -> int:
    """Deterministic shard index for a snippet.

    Keyed on a blake2b digest of the source text, so a given snippet
    always hits the same shard's warm caches.
    """
    return _route_key(code) % n_shards


@dataclass(frozen=True)
class AutoscaleConfig:
    """Queue-depth autoscaling knobs for :class:`ShardedEngine`.

    Each serving call samples the mean per-shard backlog (requests sent
    but unanswered, over active shards) into a rolling window of
    ``window`` samples.  Once the window is full and ``cooldown_s`` has
    passed since the last resize, a mean above ``high_watermark`` grows
    the fleet by one worker and a mean below ``low_watermark`` shrinks it
    by one, always staying within ``[min_shards, max_shards]``.  The
    window is cleared after every resize, so the next decision is based
    entirely on post-resize load — together with the cooldown this is the
    hysteresis that prevents flapping.

    ``latency_high_ms`` (optional) adds a second grow signal: a rolling
    window over the per-snippet round-trip latency of each worker
    sub-batch (send to reply, forward pass included).  When its mean
    exceeds the watermark the fleet grows even with shallow queues —
    sequential callers never build a backlog, but a slow (e.g. just
    reloaded, bigger) model still saturates the workers — and while it is
    above the watermark the fleet refuses to shrink.  ``None`` (default)
    keeps autoscaling purely queue-depth driven.  Tuning guidance lives
    in ``docs/operations.md``.
    """

    min_shards: int = 1
    max_shards: int = 4
    high_watermark: float = 2.0
    low_watermark: float = 0.25
    window: int = 16
    cooldown_s: float = 5.0
    latency_high_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ValueError("min_shards must be >= 1")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if not 0.0 <= self.low_watermark < self.high_watermark:
            raise ValueError(
                "need 0 <= low_watermark < high_watermark")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if self.latency_high_ms is not None and self.latency_high_ms <= 0:
            raise ValueError("latency_high_ms must be > 0 (or None)")

    def clamp(self, n_shards: int) -> int:
        """``n_shards`` clamped into ``[min_shards, max_shards]``."""
        return max(self.min_shards, min(self.max_shards, n_shards))


def snapshot_stats(engine) -> Dict[str, object]:
    """Engine-agnostic stats snapshot: supports the single-head
    ``engine.stats`` (an ``EngineStats``), ``MultiModelEngine.stats()``,
    and ``ShardedEngine.stats()`` alike.  The one helper shared by the
    worker loop and the CLI's ``--stats`` dump."""
    stats = getattr(engine, "stats", None)
    if callable(stats):
        return stats()
    if stats is not None:
        return stats.as_dict()
    return {}


def _head_names(engine) -> List[str]:
    """Engine-agnostic model-head listing (empty for single-model engines)."""
    names = getattr(engine, "head_names", None)
    if callable(names):
        return list(names())
    return []


def _worker_main(factory, requests, responses, reload_spec=None,
                 canary_spec=None) -> None:
    """Worker loop: build the engine once, then serve method calls.

    ``reload_spec`` — a ``(checkpoint_path, version_tag)`` pair — replays
    the parent's last *successful* hot reload on a worker spawned after
    it (the autoscaler growing the fleet): the factory closes over the
    registry the parent started with, so without the replay a grown
    worker would serve pre-reload weights.  The parent-issued tag keeps
    every worker's ``model_version`` identical.  ``canary_spec`` — a
    ``(path, fraction, version_tag)`` triple — likewise replays a canary
    rollout that was live when the grow was scheduled, so a grown worker
    splits traffic exactly like its siblings.  A failed replay (the
    checkpoint vanished since) falls back to the weights already loaded
    and keeps serving — a live worker with a divergent ``model_version``
    in ``/stats`` beats a dead slot.

    Messages are ``(rid, method, payload)`` tuples; replies are
    ``(rid, "ok", result)`` or ``(rid, "error", repr)`` — the echoed
    request id lets concurrent parent threads pair replies with their own
    requests, and a worker-side exception surfaces in the caller instead
    of hanging the shard.
    """
    engine = factory()
    if reload_spec is not None:
        path, version = reload_spec
        try:
            engine.reload(path, version=version)
        except Exception:  # noqa: BLE001 — factory weights keep serving
            pass
    if canary_spec is not None:
        path, fraction, version = canary_spec
        try:
            engine.start_canary(path, fraction, version=version)
        except Exception:  # noqa: BLE001 — primary-only worker keeps serving
            pass
    try:
        while True:
            msg = requests.get()
            if msg == _STOP:
                return
            rid, method, payload = msg
            try:
                if method == "stats":
                    result = snapshot_stats(engine)
                elif method == "heads":
                    result = _head_names(engine)
                elif method == "reload":
                    path, version = payload
                    result = engine.reload(path, version=version)
                elif method == "start_canary":
                    path, fraction, version = payload
                    result = engine.start_canary(path, fraction,
                                                 version=version)
                elif method == "canary_promote":
                    result = engine.promote()
                elif method == "canary_rollback":
                    result = engine.rollback()
                else:
                    result = getattr(engine, method)(payload)
                responses.put((rid, "ok", result))
            except Exception as exc:  # noqa: BLE001 — relayed to the caller
                responses.put((rid, "error", f"{type(exc).__name__}: {exc}"))
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()


class _Token(NamedTuple):
    """Handle for one in-flight worker request.

    Captures the response queue and process object *at send time*: if the
    autoscaler later retires this slot and respawns it with fresh queues,
    the caller still collects its reply from the queue the retired worker
    writes to.  ``sent_at`` (monotonic seconds) is the round-trip
    latency reference for the autoscaler's latency signal.
    """

    rid: int
    shard: int
    responses: object
    worker: object
    sent_at: float


class ShardedEngine:
    """Bulk advisor traffic partitioned across N single-engine workers.

    ``factory`` builds one engine per worker (an
    :class:`~repro.serve.engine.InferenceEngine`, a
    :class:`~repro.serve.registry.MultiModelEngine`, or anything exposing
    the same bulk methods).  All bulk calls (:meth:`predict_proba`,
    :meth:`advise_many`, :meth:`advise_full_many`) route per snippet by
    :func:`shard_of` over the *active* shard count and preserve request
    order in the returned results.

    Passing ``autoscale=AutoscaleConfig(...)`` turns on load-signal
    autoscaling: the worker fleet grows and shrinks between the
    configured bounds as the rolling backlog — and, with
    ``latency_high_ms``, per-snippet latency — signals demand (see
    :class:`AutoscaleConfig`).  Autoscaling always runs in
    multiprocessing mode — the in-process ``n_shards=1`` fallback cannot
    grow.

    Thread-safe: replies carry request ids, so concurrent bulk calls (e.g.
    HTTP handler threads) run in parallel — per shard, whichever caller is
    reading parks any reply that is not its own for the thread it belongs
    to; calls on disjoint shards never contend.
    """

    def __init__(
        self,
        factory: Callable[[], object],
        n_shards: int = 1,
        mp_context: Optional[str] = None,
        autoscale: Optional[AutoscaleConfig] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if autoscale is not None:
            n_shards = autoscale.clamp(n_shards)
        self.n_shards = n_shards
        self.autoscale = autoscale
        self.routed: List[int] = []       # requests routed per slot, ever
        self._depth: List[int] = []       # sub-batches in flight per slot
        self._meta_lock = threading.Lock()   # routed/_depth/request ids
        self._route_lock = threading.RLock()  # active shard count + resizes
        self._rids = itertools.count()
        self._factory = factory
        self._reload_spec: Optional[Tuple[str, str]] = None
        self._canary_spec: Optional[Tuple[str, float, str]] = None
        self._reload_count = 0
        self._local = None
        self._workers: List[mp.Process] = []
        self._requests: List[mp.queues.Queue] = []
        self._responses: List[mp.queues.Queue] = []
        self._closed = False
        # autoscaler state
        self._window = (RollingMean(autoscale.window)
                        if autoscale is not None else None)
        self._lat_window = (RollingMean(autoscale.window)
                            if autoscale is not None
                            and autoscale.latency_high_ms is not None
                            else None)
        self._last_resize_at = time.monotonic()
        self._resizes = 0
        self._resizing = False    # a grow is preparing outside _route_lock
        self._last_resize: Optional[Dict[str, object]] = None
        if n_shards == 1 and autoscale is None:
            # in-process fallback: same API, no IPC, no extra processes
            self.routed.append(0)
            self._depth.append(0)
            self._local = factory()
            return
        # reply plumbing: one reader at a time per shard; replies that
        # belong to another thread's request are parked in _pending
        self._recv_locks: List[threading.Lock] = []
        self._pending_locks: List[threading.Lock] = []
        self._pending: List[Dict[int, Tuple[str, object]]] = []
        if mp_context is None:
            mp_context = ("fork" if "fork" in mp.get_all_start_methods()
                          else "spawn")
        self._mp_ctx = mp.get_context(mp_context)
        for shard in range(n_shards):
            self._install_worker(shard, self._start_worker(shard, None, None))

    # -- worker lifecycle --------------------------------------------------

    def _start_worker(self, index: int,
                      reload_spec: Optional[Tuple[str, str]],
                      canary_spec: Optional[Tuple[str, float, str]]
                      ) -> Optional[Tuple]:
        """Spawn a worker process for slot ``index`` (no routing changes).

        Deliberately runs *without* ``_route_lock``: process start can
        take a while and the slot is not routable until
        :meth:`_install_worker` publishes it.  ``reload_spec`` /
        ``canary_spec`` (the caller's snapshots of the last successful
        reload and any live canary) are replayed in the worker at startup
        so a grown worker never serves pre-rollout weights and splits
        canary traffic like its siblings.  Returns ``None`` — grow
        aborted, retry later — when the slot's retired worker is still
        draining in-flight requests: terminating it would fail the
        callers waiting on those replies.
        """
        if index < len(self._workers):
            old = self._workers[index]
            if old.is_alive():  # retired worker still draining
                old.join(timeout=1.0)
                if old.is_alive():
                    return None  # don't kill its in-flight work; retry
        req: "mp.queues.Queue" = self._mp_ctx.Queue()
        resp: "mp.queues.Queue" = self._mp_ctx.Queue()
        proc = self._mp_ctx.Process(
            target=_worker_main,
            args=(self._factory, req, resp, reload_spec, canary_spec),
            name=f"advisor-shard-{index}", daemon=True)
        proc.start()
        return proc, req, resp

    def _install_worker(self, index: int, started: Tuple) -> None:
        """Publish a started worker into slot ``index``.

        Appends a new slot or replaces a retired one (the autoscaler
        growing back into it).  Per-slot locks and pending-reply parking
        are created once and never replaced — late replies from a retired
        worker drain through the queue objects their callers captured in
        their :class:`_Token`.  Callers resizing a live engine hold
        ``_route_lock``.
        """
        proc, req, resp = started
        if index == len(self._workers):
            self._workers.append(proc)
            self._requests.append(req)
            self._responses.append(resp)
            self._recv_locks.append(threading.Lock())
            self._pending_locks.append(threading.Lock())
            self._pending.append({})
            self.routed.append(0)
            self._depth.append(0)
        else:
            self._workers[index] = proc
            self._requests[index] = req
            self._responses[index] = resp

    # -- routing -----------------------------------------------------------

    def shard_of(self, code: str) -> int:
        """Shard index this engine routes ``code`` to (active count)."""
        return shard_of(code, self.n_shards)

    # -- worker IPC --------------------------------------------------------

    def _send(self, shard: int, method: str, payload) -> _Token:
        """Enqueue one request on ``shard``; returns its reply token."""
        if self._closed:
            raise RuntimeError("sharded engine is closed")
        with self._route_lock:
            token = _Token(next(self._rids), shard,
                           self._responses[shard], self._workers[shard],
                           time.monotonic())
            with self._meta_lock:
                self._depth[shard] += 1
            self._requests[shard].put((token.rid, method, payload))
        return token

    def _collect(self, token: _Token) -> Tuple[str, object]:
        """Wait for the reply to ``token``, parking other threads' replies.

        Raises ``RuntimeError`` if the worker dies before answering."""
        shard = token.shard
        try:
            while True:
                with self._pending_locks[shard]:
                    if token.rid in self._pending[shard]:
                        return self._pending[shard].pop(token.rid)
                with self._recv_locks[shard]:
                    # ours may have been parked while we waited for the lock
                    with self._pending_locks[shard]:
                        if token.rid in self._pending[shard]:
                            return self._pending[shard].pop(token.rid)
                    got_rid, status, result = self._reply(token)
                    if got_rid == token.rid:
                        return status, result
                    with self._pending_locks[shard]:
                        self._pending[shard][got_rid] = (status, result)
        finally:
            with self._meta_lock:
                self._depth[shard] -= 1

    def _reply(self, token: _Token):
        """Next raw reply on ``token``'s queue, without hanging on a dead
        worker.

        Polls with a short timeout and, between polls, checks the worker is
        still alive — a factory that crashes at startup or a worker killed
        mid-request must surface as an error, not wedge callers forever.
        Queue and process come from the token, so a slot respawned by the
        autoscaler cannot redirect a caller onto the wrong queue."""
        while True:
            try:
                return token.responses.get(timeout=1.0)
            except queue_mod.Empty:
                if not token.worker.is_alive():
                    try:  # a final reply may still be in the queue's pipe
                        return token.responses.get(timeout=1.0)
                    except queue_mod.Empty:
                        raise RuntimeError(
                            f"shard {token.shard} worker died (exitcode "
                            f"{token.worker.exitcode})") from None

    def _scatter_call(self, method: str, codes: Sequence[str]) -> List:
        """Fan ``codes`` out by shard, run ``method`` on each worker's
        sub-batch concurrently, and gather results back in request order."""
        if self._closed:
            raise RuntimeError("sharded engine is closed")
        if self._local is not None:
            with self._meta_lock:  # routed[] is read-modify-write
                self.routed[0] += len(codes)
            return list(getattr(self._local, method)(list(codes)))
        self._observe_load()
        # hash outside the lock (digests are shard-count independent and
        # dominate routing cost); bucket + send under it so a concurrent
        # resize cannot strand a sub-batch on a retiring worker.
        # Collection happens outside the lock.
        keys = [_route_key(code) for code in codes]
        with self._route_lock:
            n = self.n_shards
            by_shard: Dict[int, List[int]] = {}
            for i, key in enumerate(keys):
                by_shard.setdefault(key % n, []).append(i)
            # send every sub-batch before collecting: workers overlap
            tokens: Dict[int, _Token] = {}
            for shard, rows in by_shard.items():
                with self._meta_lock:
                    self.routed[shard] += len(rows)
                tokens[shard] = self._send(shard, method,
                                           [codes[i] for i in rows])
        out: List = [None] * len(codes)
        failures: List[str] = []
        for shard, rows in by_shard.items():
            try:
                status, result = self._collect(tokens[shard])
            except RuntimeError as exc:
                failures.append(str(exc))
                continue
            if status != "ok":
                failures.append(f"shard {shard} failed: {result}")
                continue
            if self._lat_window is not None:
                # per-snippet round-trip latency of this sub-batch (queue
                # wait + forward pass) — the autoscaler's slow-model signal
                elapsed = time.monotonic() - tokens[shard].sent_at
                self._lat_window.push(elapsed * 1e3 / max(1, len(rows)))
            for i, value in zip(rows, result):
                out[i] = value
        if failures:
            raise RuntimeError("; ".join(failures))
        return out

    # -- autoscaling -------------------------------------------------------

    def _observe_load(self) -> None:
        """Sample the backlog this call arrives into, then maybe resize.

        The sample is taken *before* this call's own sends, so it measures
        contention from other in-flight callers: sequential traffic
        samples zero (scale down), concurrent bursts sample the queue the
        burst is building (scale up)."""
        if self._window is None:
            return
        with self._meta_lock:
            n = self.n_shards
            backlog = sum(self._depth[:n])
        self._window.push(backlog / n)
        self._maybe_autoscale()

    def _latency_signal(self) -> Tuple[float, bool]:
        """``(mean per-snippet ms, above-watermark?)`` of the latency
        window; ``(0.0, False)`` when the signal is disabled or not yet
        full."""
        cfg = self.autoscale
        if (self._lat_window is None or cfg is None
                or cfg.latency_high_ms is None):
            return 0.0, False
        mean = self._lat_window.mean()
        return mean, self._lat_window.full and mean > cfg.latency_high_ms

    def _maybe_autoscale(self) -> None:
        """Apply the resize rule when the window is full and cooled down.

        Growth fires on either signal — deep queues (concurrent burst) or
        high per-snippet latency (slow model, see
        ``AutoscaleConfig.latency_high_ms``); shrinking requires an idle
        queue *and* a latency window below the watermark.

        Shrinking is cheap (retire the top slot) and completes under
        ``_route_lock`` on the calling thread.  Growing spawns a process,
        which can take seconds — exactly when the fleet is backlogged —
        so it is handed to a short-lived background thread (``_resizing``
        serializes grows) and the sampling request continues unstalled;
        only the final publish of the new slot takes the lock.
        """
        cfg = self.autoscale
        if cfg is None or self._closed or not self._window.full:
            return
        if time.monotonic() - self._last_resize_at < cfg.cooldown_s:
            return
        with self._route_lock:
            # re-check under the lock: another caller may just have resized
            # (clearing the window) or the cooldown may have restarted
            if (self._closed or self._resizing or not self._window.full
                    or time.monotonic() - self._last_resize_at < cfg.cooldown_s):
                return
            mean = self._window.mean()
            lat_mean, lat_slow = self._latency_signal()
            if ((mean > cfg.high_watermark or lat_slow)
                    and self.n_shards < cfg.max_shards):
                if mean > cfg.high_watermark:
                    reason = (f"mean queue depth {mean:.2f} > "
                              f"high watermark {cfg.high_watermark}")
                else:
                    reason = (f"mean per-snippet latency {lat_mean:.2f} ms > "
                              f"latency watermark {cfg.latency_high_ms} ms")
                self._resizing = True
                threading.Thread(
                    target=self._grow,
                    args=(self.n_shards, self._reload_spec,
                          self._canary_spec, reason),
                    name="advisor-autoscale-grow", daemon=True).start()
            elif (mean < cfg.low_watermark and not lat_slow
                  and self.n_shards > cfg.min_shards):
                # shrink: the retiring slot leaves the routing set first,
                # then receives _STOP — FIFO ordering means sub-batches
                # already queued are answered before the worker exits
                retiring = self.n_shards - 1
                self._requests[retiring].put(_STOP)
                self.n_shards = retiring
                self._note_resize(retiring + 1, retiring,
                                  f"mean queue depth {mean:.2f} < "
                                  f"low watermark {cfg.low_watermark}")

    def _grow(self, index: int, reload_spec: Optional[Tuple[str, str]],
              canary_spec: Optional[Tuple[str, float, str]],
              reason: str) -> None:
        """Background grow: spawn, publish, catch up on racing rollouts.

        ``reload_spec`` / ``canary_spec`` were snapshotted under
        ``_route_lock`` when this grow was scheduled; a reload or canary
        broadcast landing between then and the publish only reaches the
        *published* slots, so after installing we re-check both specs and
        send the new worker catch-up messages — in rollout order: drop a
        canary that ended (its promote, if any, shows up as a changed
        reload spec), replay the reload, then start a canary that began.
        A catch-up failure leaves the worker serving its spawn-time
        weights — alive but with a divergent ``model_version`` visible in
        :meth:`stats`.
        """
        catchups: List[_Token] = []
        try:
            started = self._start_worker(index, reload_spec, canary_spec)
            if started is None:
                return  # retired slot still draining; a later tick retries
            with self._route_lock:
                if self._closed:  # closed while preparing: stop the orphan
                    started[1].put(_STOP)
                    return
                self._install_worker(index, started)
                self.n_shards = index + 1
                self._note_resize(index, index + 1, reason)
                msgs: List[Tuple[str, object]] = []
                canary_changed = self._canary_spec != canary_spec
                if canary_changed and canary_spec is not None:
                    msgs.append(("canary_rollback", None))
                if (self._reload_spec is not None
                        and self._reload_spec != reload_spec):
                    msgs.append(("reload", self._reload_spec))
                if canary_changed and self._canary_spec is not None:
                    msgs.append(("start_canary", self._canary_spec))
                catchups = [self._send(index, method, payload)
                            for method, payload in msgs]
        finally:
            self._resizing = False
        for catchup in catchups:
            try:
                self._collect(catchup)
            except RuntimeError:  # pragma: no cover — worker died at start
                pass

    def _note_resize(self, old: int, new: int, reason: str) -> None:
        """Record one resize and restart the hysteresis clocks."""
        self._resizes += 1
        self._last_resize = {"from": old, "to": new, "reason": reason,
                             "at": round(time.time(), 3)}
        self._last_resize_at = time.monotonic()
        self._window.clear()
        if self._lat_window is not None:
            self._lat_window.clear()

    # -- bulk APIs ---------------------------------------------------------

    def predict_proba(self, codes: Sequence[str]) -> np.ndarray:
        """(N, 2) directive probabilities, sharded and order-preserving."""
        rows = self._scatter_call("predict_proba", codes)
        if not rows:
            # compute dtype, not np.empty's float64 default — the sharded
            # path must stay as float32-pure as the in-process engine
            return np.empty((0, 2), dtype=get_dtype())
        return np.stack([np.asarray(row) for row in rows])

    def advise_many(self, codes: Sequence[str]) -> List[Advice]:
        """Bulk directive advice across shards."""
        return self._scatter_call("advise_many", codes)

    def advise(self, code: str) -> Advice:
        """Single-snippet directive advice (routed like any other)."""
        return self.advise_many([code])[0]

    def advise_full_many(self, codes: Sequence[str]) -> List:
        """Bulk combined directive+clause advice (workers must host a
        :class:`~repro.serve.registry.MultiModelEngine`)."""
        return self._scatter_call("advise_full_many", codes)

    def advise_full(self, code: str):
        """Single-snippet combined advice."""
        return self.advise_full_many([code])[0]

    # -- hot reload --------------------------------------------------------

    def reload(self, path) -> Optional[str]:
        """Broadcast a checkpoint reload to every active worker.

        Workers must host an engine exposing ``reload(path, version=...)``
        (a :class:`~repro.serve.registry.MultiModelEngine`); each swaps
        its heads atomically as described there, all under **one**
        parent-issued version tag so the whole fleet — including workers
        the autoscaler spawns later, which replay the reload at startup —
        reports the same ``model_version``.  Raises if any worker fails —
        the error names the shards, shards that did reload keep the new
        weights (re-issue the reload after fixing the checkpoint), and
        the remembered replay spec reverts to the last *fully successful*
        reload so future grown workers never start from a known-bad
        checkpoint.  Returns the new version tag.
        """
        path = str(path)
        if self._closed:
            raise RuntimeError("sharded engine is closed")
        if self._canary_spec is not None:
            raise RuntimeError(
                f"canary {self._canary_spec[2]} is active; promote() or "
                "rollback() it before reloading the primary")
        if self._local is not None:
            reload_fn = getattr(self._local, "reload", None)
            if reload_fn is None:
                raise RuntimeError(
                    "local engine does not support reload(path)")
            version = reload_fn(path)
            self._reload_spec = (path, version)
            return version
        with self._route_lock:
            self._reload_count += 1
            version = f"v{self._reload_count}:{Path(path).name}"
            tokens = [self._send(shard, "reload", (path, version))
                      for shard in range(self.n_shards)]
            # remembered under the lock: a grow racing this reload either
            # sees the spec (and replays it) or got a broadcast token
            previous_spec = self._reload_spec
            self._reload_spec = (path, version)
        failures: List[str] = []
        for shard, token in enumerate(tokens):
            try:
                status, result = self._collect(token)
            except RuntimeError as exc:
                failures.append(str(exc))
                continue
            if status != "ok":
                failures.append(f"shard {shard} failed: {result}")
        if failures:
            with self._route_lock:
                # don't poison future grown workers with a bad checkpoint
                if self._reload_spec == (path, version):
                    self._reload_spec = previous_spec
            raise RuntimeError("; ".join(failures))
        return version

    # -- canary rollout ----------------------------------------------------

    def _broadcast(self, method: str, payload) -> List[str]:
        """Send ``method`` to every active shard and collect the failures
        (caller holds no locks; sends happen under ``_route_lock``)."""
        with self._route_lock:
            tokens = [self._send(shard, method, payload)
                      for shard in range(self.n_shards)]
        failures: List[str] = []
        for shard, token in enumerate(tokens):
            try:
                status, result = self._collect(token)
            except RuntimeError as exc:
                failures.append(str(exc))
                continue
            if status != "ok":
                failures.append(f"shard {shard} failed: {result}")
        return failures

    def start_canary(self, path, fraction: float,
                     version: Optional[str] = None) -> str:
        """Broadcast a canary rollout to every active worker.

        Workers must host an engine exposing ``start_canary`` (a
        :class:`~repro.serve.registry.MultiModelEngine`); the parent
        issues **one** version tag so the whole fleet — including workers
        the autoscaler grows mid-rollout, which replay the canary at
        spawn — agrees on the rollout's identity, and the digest-based
        arm split is identical on every worker by construction.  If any
        worker fails to start, the rollout is rolled back everywhere and
        the error raised — a traffic split only some shards honour is
        never left serving.  Returns the canary version tag.

        Promotion policies stay engine-level: in a fleet the operator (or
        an external controller watching ``/stats``) decides, then calls
        :meth:`promote` / :meth:`rollback` to move every worker at once.
        """
        path = str(path)
        if self._closed:
            raise RuntimeError("sharded engine is closed")
        if self._local is not None:
            version = self._local.start_canary(path, fraction,
                                               version=version)
            self._canary_spec = (path, fraction, version)
            return version
        with self._route_lock:
            if self._canary_spec is not None:
                raise RuntimeError(
                    f"canary {self._canary_spec[2]} already active; "
                    "promote() or rollback() it first")
            self._reload_count += 1
            if version is None:
                version = f"v{self._reload_count}:{Path(path).name}"
            spec = (path, float(fraction), version)
            tokens = [self._send(shard, "start_canary", spec)
                      for shard in range(self.n_shards)]
            self._canary_spec = spec
        failures: List[str] = []
        for shard, token in enumerate(tokens):
            try:
                status, result = self._collect(token)
            except RuntimeError as exc:
                failures.append(str(exc))
                continue
            if status != "ok":
                failures.append(f"shard {shard} failed: {result}")
        if failures:
            try:  # drop the partial rollout everywhere, then report
                self.rollback()
            except RuntimeError:  # pragma: no cover — rollback best-effort
                pass
            raise RuntimeError("; ".join(failures))
        return version

    def promote(self) -> str:
        """Broadcast canary promotion: every worker atomically makes the
        canary its primary (see ``MultiModelEngine.promote``), and the
        remembered reload spec moves to the promoted checkpoint so
        workers grown later replay it.  Raises with no canary active, or
        naming the shards that failed.  On a partial failure the canary
        spec is *kept*: shards that promoted hold the new weights, and
        re-issuing ``promote()`` converges the rest (already-promoted
        workers answer "no canary active", which is tolerated — the
        rollout is never left wedged with no API path to finish it).
        Returns the promoted version tag."""
        if self._closed:
            raise RuntimeError("sharded engine is closed")
        with self._route_lock:
            if self._canary_spec is None:
                raise RuntimeError("no canary active")
            path, _, version = self._canary_spec
        if self._local is not None:
            result = self._local.promote()
            with self._route_lock:
                self._reload_spec = (path, version)
                self._canary_spec = None
            return result
        failures = [f for f in self._broadcast("canary_promote", None)
                    if "no canary active" not in f]
        if failures:
            raise RuntimeError("; ".join(failures))
        with self._route_lock:
            self._reload_spec = (path, version)
            self._canary_spec = None
        return version

    def rollback(self) -> None:
        """Broadcast canary rollback: every worker drops its canary arm
        and keeps serving the primary untouched.  Idempotent per shard —
        a worker that never started (or already dropped) its canary is
        not an error, so a partially started rollout can always be
        cleaned up.  Like :meth:`promote`, a partial failure keeps the
        canary spec so the rollback can simply be re-issued."""
        if self._closed:
            raise RuntimeError("sharded engine is closed")
        with self._route_lock:
            if self._canary_spec is None and self._local is None:
                raise RuntimeError("no canary active")
        if self._local is not None:
            self._local.rollback()
            with self._route_lock:
                self._canary_spec = None
            return
        failures = [f for f in self._broadcast("canary_rollback", None)
                    if "no canary active" not in f]
        if failures:
            raise RuntimeError("; ".join(failures))
        with self._route_lock:
            self._canary_spec = None

    # -- observability -----------------------------------------------------

    def head_names(self) -> List[str]:
        """Model heads hosted by the workers (asked of shard 0 — every
        worker is built by the same factory); empty for single-model
        engines."""
        if self._local is not None:
            return _head_names(self._local)
        status, result = self._collect(self._send(0, "heads", None))
        if status != "ok":
            raise RuntimeError(f"shard 0 failed: {result}")
        return result

    def queue_depth(self) -> List[int]:
        """Per-active-shard count of requests sent but not yet answered."""
        with self._meta_lock:
            return list(self._depth[:self.n_shards])

    def stats(self) -> Dict[str, object]:
        """Aggregate + per-shard serving metrics.

        Shape: ``{"n_shards", "routed": [per-slot request counts],
        "queue_depth": [in-flight requests per active shard], "shards":
        [per-worker engine snapshots], "combined": merged counters}`` —
        plus ``"model_version"`` when the workers report one, a
        ``"canary"`` block (version, fraction, per-arm counters summed
        across workers, and ``shards_live`` — how many workers host the
        canary) when one is rolling out, and an ``"autoscaler"`` block
        (bounds, current shards, resize count, last resize with its
        reason, latency watermark + window mean when the latency signal
        is on) when autoscaling is on.  JSON-ready.
        """
        if self._local is not None:
            shards = [snapshot_stats(self._local)]
        else:
            shards = self._scatter_stats()
        flat = [s.get("combined", s) if isinstance(s, dict) else s
                for s in shards]
        with self._meta_lock:
            routed = list(self.routed)
        out: Dict[str, object] = {
            "n_shards": self.n_shards,
            "routed": routed,
            "queue_depth": self.queue_depth(),
            "shards": shards,
            "combined": merge_stat_dicts(
                f for f in flat if isinstance(f, dict)),
        }
        first = shards[0] if shards else None
        if isinstance(first, dict) and "model_version" in first:
            out["model_version"] = first["model_version"]
        if isinstance(first, dict) and "canary" in first:
            live = [s["canary"] for s in shards
                    if isinstance(s, dict) and s.get("canary")]
            out["canary"] = None if not live else {
                "version": live[0]["version"],
                "fraction": live[0]["fraction"],
                "shards_live": len(live),
                "arms": {
                    arm: merge_arm_stats(c["arms"][arm] for c in live)
                    for arm in ("primary", "canary")
                },
            }
            out["last_canary"] = next(
                (s["last_canary"] for s in shards
                 if isinstance(s, dict) and s.get("last_canary")), None)
        if self.autoscale is not None:
            out["autoscaler"] = {
                "min_shards": self.autoscale.min_shards,
                "max_shards": self.autoscale.max_shards,
                "current_shards": self.n_shards,
                "resizes": self._resizes,
                "last_resize": self._last_resize,
                "window_mean": round(self._window.mean(), 3),
            }
            if self._lat_window is not None:
                out["autoscaler"]["latency_high_ms"] = (
                    self.autoscale.latency_high_ms)
                out["autoscaler"]["window_latency_mean_ms"] = round(
                    self._lat_window.mean(), 3)
        return out

    def _scatter_stats(self) -> List[Dict[str, object]]:
        with self._route_lock:
            tokens = [self._send(shard, "stats", None)
                      for shard in range(self.n_shards)]
        replies = []
        for shard, token in enumerate(tokens):
            try:  # collect every live shard even if one died
                replies.append(self._collect(token))
            except RuntimeError as exc:
                replies.append(("error", str(exc)))
        snapshots = []
        for shard, (status, result) in enumerate(replies):
            if status != "ok":
                raise RuntimeError(f"shard {shard} failed: {result}")
            snapshots.append(result)
        return snapshots

    # -- lifecycle ---------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Stop all workers (idempotent); the engine is unusable after."""
        if self._closed:
            return
        self._closed = True
        if self._local is not None:
            close = getattr(self._local, "close", None)
            if close is not None:
                close()
            return
        with self._route_lock:
            for req in self._requests:
                req.put(_STOP)
            for proc in self._workers:
                proc.join(timeout=timeout)
                if proc.is_alive():  # pragma: no cover — stuck worker
                    proc.terminate()
            for q in (*self._requests, *self._responses):
                q.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
