"""Serving layer: batched, cached, sync + async inference for the advisor.

See :mod:`repro.serve.engine` for the architecture; the CLI front-ends are
``repro serve`` (JSON-lines loop) and ``repro advise --batch``.
"""

from repro.serve.engine import (
    Advice,
    EngineConfig,
    EngineStats,
    InferenceEngine,
    LRUCache,
)

__all__ = ["Advice", "EngineConfig", "EngineStats", "InferenceEngine", "LRUCache"]
