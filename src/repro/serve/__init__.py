"""Serving layer: the advisor as a multi-model, sharded, observable service.

Seven modules build on each other:

* :mod:`repro.serve.api` — the v1 advice surface:
  :class:`AdviceRequest` / :class:`AdviceResult`, the one
  request/response dataclass pair every serving layer speaks
  (``advise_v1`` on :class:`MultiModelEngine` and
  :class:`ShardedEngine`, ``/v1/*`` over HTTP); ``SCHEMA_VERSION``
  names the wire schema.
* :mod:`repro.serve.engine` — :class:`InferenceEngine`: length-bucketed
  micro-batching, token-digest prediction LRU, tokenize-once memo, sync
  bulk + async queue APIs for one model.
* :mod:`repro.serve.registry` — :class:`ModelRegistry` /
  :class:`MultiModelEngine`: the directive model plus the ``private`` /
  ``reduction`` clause models behind one engine, with the combined
  :meth:`~MultiModelEngine.advise_full` fan-out, hot checkpoint reload
  (:meth:`~MultiModelEngine.reload`, :class:`CheckpointWatcher`),
  directive-gated clause fan-out (``EngineConfig.gate_margin``), and
  digest-sliced canary rollouts
  (:meth:`~MultiModelEngine.start_canary` /
  :meth:`~MultiModelEngine.promote` /
  :meth:`~MultiModelEngine.rollback`, :class:`CanaryPolicy`).
* :mod:`repro.serve.sharding` — :class:`ShardedEngine`: bulk traffic
  partitioned across worker processes by source digest, per-shard caches
  kept hot, queue-depth autoscaling between :class:`AutoscaleConfig`
  bounds, and fault tolerance (:class:`SupervisorConfig`): worker
  supervision with heartbeats and respawn budgets, per-request
  deadlines, and degraded verdicts instead of hangs or exceptions.
* :mod:`repro.serve.shm_ring` — :class:`ShmRing`: the preallocated
  shared-memory SPSC rings and fixed int32 frame layout behind the
  sharded fleet's zero-copy data plane (``ShardedEngine(ipc="shm")``,
  the default): the router encodes each snippet once and ships token
  ids; workers reply with probabilities and verdict flags — no pickling
  on the hot path.
* :mod:`repro.serve.chaos` — :class:`ChaosConfig`: deterministic
  worker-fault injection (kill / hang / drop / malformed / slow) that
  the fault-tolerance tests and benches drive.
* :mod:`repro.serve.http_api` — stdlib HTTP front-end (``/advise``,
  ``/advise/batch``, ``/reload``, ``/healthz``, ``/stats``, all also
  mounted under ``/v1/``) with admission control
  (:class:`AdmissionConfig`): body/batch caps, queue-depth load
  shedding, and a circuit breaker.

Counters live in :mod:`repro.serve.metrics`.  CLI front-ends: ``repro
serve`` (JSON-lines on stdin, or ``--http PORT``), ``repro advise``.
The full walk-through is in ``docs/serving.md``; the operator's guide
(deploy, probe, reload, autoscale) is ``docs/operations.md``.
"""

from repro.serve.api import SCHEMA_VERSION, AdviceRequest, AdviceResult
from repro.serve.chaos import ChaosConfig, inject_fault
from repro.serve.engine import (
    Advice,
    EngineConfig,
    EngineStats,
    InferenceEngine,
    LRUCache,
    ModelSlot,
)
from repro.serve.http_api import (
    AdmissionConfig,
    AdvisorHTTPServer,
    make_server,
    serve_forever,
)
from repro.serve.metrics import (
    ArmStats,
    RollingMean,
    batch_hist_bucket,
    merge_arm_stats,
    merge_stat_dicts,
)
from repro.serve.registry import (
    CanaryPolicy,
    CheckpointWatcher,
    ClauseAdvice,
    FullAdvice,
    ModelHead,
    ModelRegistry,
    MultiModelEngine,
    canary_routes,
    checkpoint_mtime,
)
from repro.serve.sharding import (
    AutoscaleConfig,
    DeadlineExceeded,
    ShardedEngine,
    SupervisorConfig,
    shard_of,
    snapshot_stats,
)
from repro.serve.shm_ring import FrameTooBig, ShmRing

__all__ = [
    "SCHEMA_VERSION",
    "AdmissionConfig",
    "Advice",
    "AdviceRequest",
    "AdviceResult",
    "AdvisorHTTPServer",
    "ArmStats",
    "AutoscaleConfig",
    "CanaryPolicy",
    "ChaosConfig",
    "CheckpointWatcher",
    "ClauseAdvice",
    "DeadlineExceeded",
    "EngineConfig",
    "EngineStats",
    "FrameTooBig",
    "FullAdvice",
    "InferenceEngine",
    "LRUCache",
    "ModelHead",
    "ModelRegistry",
    "ModelSlot",
    "MultiModelEngine",
    "RollingMean",
    "ShardedEngine",
    "ShmRing",
    "SupervisorConfig",
    "batch_hist_bucket",
    "canary_routes",
    "checkpoint_mtime",
    "inject_fault",
    "make_server",
    "merge_arm_stats",
    "merge_stat_dicts",
    "serve_forever",
    "shard_of",
    "snapshot_stats",
]
