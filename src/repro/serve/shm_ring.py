"""Shared-memory SPSC ring transport for the shard fleet's data plane.

:mod:`repro.serve.sharding` originally moved every serving request and
reply through pickled :class:`multiprocessing.Queue` messages; on bulk
traffic the pickling (snippet strings out, numpy arrays and advice
objects back) dominated the round trip so thoroughly that one shard beat
two on raw throughput.  This module is the replacement data plane: a
pair of preallocated :class:`multiprocessing.shared_memory` ring buffers
per worker (one request ring, one reply ring) carrying fixed-layout
``int32`` frames — token-id arrays in, verdict ids / probabilities /
flags out — with **no pickling on the hot path**.  Control-plane traffic
(heartbeats, stats, hot reload, canary rollouts, stop) stays on the
queues, where pickling costs nothing measurable and arbitrary payloads
are worth the flexibility.

**Ring layout.**  One shared-memory segment per ring::

    [head int64][tail int64]                    # 16-byte global header
    slot 0: [seq int64][rid int64][meta int32]  # 32-byte slot header
            [words int32][crc uint32][pad]
            [payload int32 x slot_words]
    slot 1: ...

``head`` is written only by the producer, ``tail`` only by the consumer
(classic Lamport single-producer/single-consumer ring; the counters are
monotonic, the slot index is ``counter % slots``, and full/empty never
ambiguate because ``head - tail`` is the exact occupancy).  A frame is
*committed* by writing ``seq = head + 1`` after the payload — the
consumer treats a slot as readable only once its ``seq`` matches, so a
half-written frame is never observed.  ``crc`` (CRC-32 of the payload
bytes) turns a torn or corrupted slot into a *detected* fault the parent
can retry instead of a silently wrong verdict; chaos testing writes
deliberately bad CRCs through ``try_push(corrupt=True)``.  The protocol
relies on same-order store visibility for aligned words (x86-TSO; both
ends are CPython processes executing the stores in bytecode order).

**Frames.**  ``encode_request``/``decode_request`` carry the parent-side
encoding: per snippet a length, a 16-byte source digest (shard-stable
routing/canary identity — the worker never sees source text), and the
``int32`` token-id row the router encoded exactly once.
``encode_result``/``decode_result`` carry verdicts back as flat numbers:
probabilities as two-word float64 (lossless for every supported compute
dtype), booleans as flag bits, clause heads as indices into the fleet's
shared head-name order.  ``codec_tag`` pins the vocabulary generation:
a worker whose deployed version differs answers a ``fault`` frame and
the parent re-encodes and retries.

Sizing: ``slots * (32 + 4 * slot_words)`` bytes per ring, two rings per
worker.  The defaults (8 slots x 128 Ki words = ~4 MiB per ring) hold a
512-snippet sub-batch comfortably; ``docs/operations.md`` has tuning
guidance, and frames that do not fit fall back to the control queue.
"""

from __future__ import annotations

import itertools
import os
import time
import zlib
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.dtype import get_dtype
from repro.serve.engine import Advice
from repro.serve.registry import ClauseAdvice, FullAdvice

__all__ = [
    "RING_NAME_PREFIX",
    "STATUS_ERROR",
    "STATUS_FAULT",
    "STATUS_OK",
    "FrameTooBig",
    "ShmRing",
    "decode_request",
    "decode_result",
    "decode_text",
    "encode_request",
    "encode_result",
    "encode_text",
    "reply_meta",
    "split_reply_meta",
]

#: Every segment name starts with this, so tests can assert no leaked
#: ``/dev/shm`` entries after teardown (see ``tests/conftest.py``).
RING_NAME_PREFIX = "repro-ring"

_GLOBAL_HEADER = 16   # head + tail, int64 each
_SLOT_HEADER = 32     # seq, rid (int64); meta, words, crc, pad (int32)

#: Reply status codes (high bits of the reply ``meta`` word).
STATUS_OK = 0       # payload is an encoded result
STATUS_ERROR = 1    # payload is an application error message (re-raised)
STATUS_FAULT = 2    # payload is a transport fault note (retried, never raised)

_ring_names = itertools.count()


class FrameTooBig(ValueError):
    """A frame exceeds the ring's fixed ``slot_words`` payload capacity.

    The sharding layer catches this (and a full ring) by falling back to
    the control queue for that sub-batch, so oversized batches stay
    correct — they just pay the pickled path."""


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without re-registering it.

    ``SharedMemory.__init__`` registers every attach with the resource
    tracker (until 3.13's ``track=False``), which makes the *attaching*
    process unlink the segment at exit and spam leak warnings.  The
    parent that created the segment owns its lifetime; attachers must
    unregister."""
    shm = shared_memory.SharedMemory(name=name)
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:  # noqa: BLE001 — tracker absent on some platforms
        pass
    return shm


class ShmRing:
    """Fixed-capacity SPSC ring over one shared-memory segment.

    Exactly one producer process/thread may call the push side and one
    consumer the pop side (the sharding layer serializes the parent's
    sides under its routing/receive locks; the worker loop is single-
    threaded by construction).  The creating process owns the segment:
    it must call :meth:`close` and :meth:`unlink` — workers attach (or
    inherit over ``fork``) and only ever :meth:`close`.

    Picklable by name: sending a ring to a ``spawn``-context worker
    re-attaches in the child.
    """

    def __init__(self, slots: int = 8, slot_words: int = 1 << 17,
                 name: Optional[str] = None, create: bool = True) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if slot_words < 16:
            raise ValueError("slot_words must be >= 16")
        self.slots = slots
        self.slot_words = slot_words
        self._slot_bytes = _SLOT_HEADER + 4 * slot_words
        nbytes = _GLOBAL_HEADER + slots * self._slot_bytes
        if create:
            name = name or (f"{RING_NAME_PREFIX}-{os.getpid()}"
                            f"-{next(_ring_names)}")
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=nbytes)
        else:
            self._shm = _attach(name)
        self.name = self._shm.name
        self._owner = create
        self._closed = False
        self._map_views()
        if create:
            self._head[0] = 0
            self._tail[0] = 0

    def _map_views(self) -> None:
        """(Re)build the numpy views over the segment buffer."""
        buf = self._shm.buf
        sb = self._slot_bytes
        n = self.slots
        self._head = np.ndarray((1,), np.int64, buf, 0)
        self._tail = np.ndarray((1,), np.int64, buf, 8)
        base = _GLOBAL_HEADER
        stride = (sb,)
        self._seq = np.ndarray((n,), np.int64, buf, base + 0, stride)
        self._rid = np.ndarray((n,), np.int64, buf, base + 8, stride)
        self._meta = np.ndarray((n,), np.int32, buf, base + 16, stride)
        self._words = np.ndarray((n,), np.int32, buf, base + 20, stride)
        self._crc = np.ndarray((n,), np.uint32, buf, base + 24, stride)
        self._payloads = [
            np.ndarray((self.slot_words,), np.int32, buf,
                       base + _SLOT_HEADER + i * sb)
            for i in range(n)
        ]

    # -- pickling (spawn-context workers attach by name) --------------------

    def __getstate__(self) -> Dict[str, object]:
        return {"slots": self.slots, "slot_words": self.slot_words,
                "name": self.name}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__init__(state["slots"], state["slot_words"],
                      name=state["name"], create=False)

    # -- occupancy -----------------------------------------------------------

    def __len__(self) -> int:
        """Committed frames currently waiting to be popped."""
        return int(self._head[0]) - int(self._tail[0])

    def fits(self, n_words: int) -> bool:
        """Whether a payload of ``n_words`` can ever fit one slot."""
        return n_words <= self.slot_words

    @property
    def nbytes(self) -> int:
        """Total size of the backing segment."""
        return _GLOBAL_HEADER + self.slots * self._slot_bytes

    # -- producer side -------------------------------------------------------

    def try_push(self, rid: int, meta: int, payload: np.ndarray,
                 corrupt: bool = False) -> bool:
        """Publish one frame; ``False`` when the ring is full.

        ``payload`` is coerced to a contiguous ``int32`` array.  Raises
        :class:`FrameTooBig` when it cannot fit a slot at any occupancy.
        ``corrupt=True`` (chaos testing only) commits the frame with a
        deliberately wrong CRC — the consumer sees a torn write."""
        payload = np.ascontiguousarray(payload, dtype=np.int32)
        if payload.size > self.slot_words:
            raise FrameTooBig(
                f"frame of {payload.size} words exceeds slot capacity "
                f"{self.slot_words}")
        head = int(self._head[0])
        if head - int(self._tail[0]) >= self.slots:
            return False
        i = head % self.slots
        self._payloads[i][:payload.size] = payload
        self._rid[i] = rid
        self._meta[i] = meta
        self._words[i] = payload.size
        crc = zlib.crc32(payload.tobytes()) & 0xFFFFFFFF
        if corrupt:
            crc ^= 0x5A5A5A5A
        self._crc[i] = crc
        # commit marker last: the consumer only reads a slot whose seq
        # matches, so it can never observe the fields above half-written
        self._seq[i] = head + 1
        self._head[0] = head + 1
        return True

    def push(self, rid: int, meta: int, payload: np.ndarray,
             corrupt: bool = False, timeout: Optional[float] = None) -> bool:
        """Blocking :meth:`try_push` with exponential-backoff polling."""
        deadline = None if timeout is None else time.monotonic() + timeout
        pause = 5e-5
        while not self.try_push(rid, meta, payload, corrupt=corrupt):
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(pause)
            pause = min(pause * 2, 2e-3)
        return True

    # -- consumer side -------------------------------------------------------

    def try_pop(self) -> Optional[Tuple[int, int, np.ndarray, bool]]:
        """Consume the next committed frame, or ``None`` when empty.

        Returns ``(rid, meta, payload_copy, crc_ok)``; popping releases
        the slot for reuse immediately (the payload is copied out).  A
        frame whose CRC (or length field) does not check out is still
        consumed — delivering it with ``crc_ok=False`` lets the parent
        count a fault and retry instead of wedging the ring."""
        tail = int(self._tail[0])
        i = tail % self.slots
        if int(self._seq[i]) != tail + 1:
            return None
        rid = int(self._rid[i])
        meta = int(self._meta[i])
        words = int(self._words[i])
        if 0 <= words <= self.slot_words:
            payload = self._payloads[i][:words].copy()
            ok = (zlib.crc32(payload.tobytes()) & 0xFFFFFFFF
                  ) == int(self._crc[i])
        else:  # corrupted length field: nothing in the slot is trustworthy
            payload = np.empty(0, np.int32)
            ok = False
        self._tail[0] = tail + 1
        return rid, meta, payload, ok

    def pop(self, timeout: Optional[float] = None
            ) -> Optional[Tuple[int, int, np.ndarray, bool]]:
        """Blocking :meth:`try_pop` with exponential-backoff polling.

        The backoff caps at 200 us: pop() only spins while a reply is
        actually owed (the consumer is inside a request round trip), so
        the cap trades a negligible slice of one core for not adding
        milliseconds of wakeup latency to every small batch."""
        deadline = None if timeout is None else time.monotonic() + timeout
        pause = 5e-5
        while True:
            frame = self.try_pop()
            if frame is not None:
                return frame
            if deadline is not None and time.monotonic() >= deadline:
                return None
            time.sleep(pause)
            pause = min(pause * 2, 2e-4)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Unmap the segment (idempotent).  Views die with it, so no
        frame returned earlier is invalidated (they are copies)."""
        if self._closed:
            return
        self._closed = True
        # numpy views hold buffer exports; they must go before close()
        self._head = self._tail = None
        self._seq = self._rid = self._meta = self._words = self._crc = None
        self._payloads = None
        try:
            self._shm.close()
        except Exception:  # noqa: BLE001 — already closed
            pass

    def unlink(self) -> None:
        """Remove the segment from the OS namespace (owner only;
        idempotent — a vanished segment is not an error)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:  # noqa: BLE001 — best-effort cleanup
            pass


# -- reply meta packing ------------------------------------------------------

def reply_meta(status: int, method_id: int) -> int:
    """Pack a reply's status + echoed method id into one meta word."""
    return (status << 8) | (method_id & 0xFF)


def split_reply_meta(meta: int) -> Tuple[int, int]:
    """Inverse of :func:`reply_meta`: ``(status, method_id)``."""
    return meta >> 8, meta & 0xFF


# -- float packing -----------------------------------------------------------
# Probabilities travel as float64 (two int32 words) — lossless for both the
# default float32 compute dtype and a REPRO_DTYPE=float64 override, so the
# queue and shm transports return bit-identical verdicts.

def _pack_floats(values) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.float64).reshape(-1).view(
        np.int32)


def _unpack_floats(words: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(words, dtype=np.int32).view(np.float64)


# -- request frames ----------------------------------------------------------

def encode_request(codec_tag: int, rows: Sequence[np.ndarray],
                   digests: Sequence[bytes]) -> np.ndarray:
    """Pack one sub-batch: ``[tag, n, len_i..., digest words..., ids...]``.

    ``rows`` are the parent-encoded int32 token-id rows; ``digests`` the
    matching 16-byte source digests (shard/canary identity — the worker
    never needs the source text back)."""
    n = len(rows)
    head = np.empty(2 + n, dtype=np.int32)
    head[0] = codec_tag
    head[1] = n
    if n:
        head[2:] = np.fromiter((len(row) for row in rows), count=n,
                               dtype=np.int32)
        return np.concatenate(
            [head, np.frombuffer(b"".join(digests), dtype=np.int32),
             *(np.ascontiguousarray(r, dtype=np.int32) for r in rows)])
    return head


def decode_request(payload: np.ndarray
                   ) -> Tuple[int, List[np.ndarray], List[bytes]]:
    """Inverse of :func:`encode_request`; raises ``ValueError`` on a
    structurally impossible frame (CRC passed but lengths disagree)."""
    if payload.size < 2:
        raise ValueError("request frame too short")
    tag = int(payload[0])
    n = int(payload[1])
    if n < 0 or payload.size < 2 + 5 * n:
        raise ValueError("request frame header out of range")
    lens = payload[2:2 + n].astype(np.int64)
    if n and (lens < 0).any():
        raise ValueError("negative row length in request frame")
    dig = payload[2 + n:2 + 5 * n].tobytes()
    digests = [dig[16 * i:16 * (i + 1)] for i in range(n)]
    ids = payload[2 + 5 * n:]
    if int(lens.sum()) != ids.size:
        raise ValueError("request frame id region does not match lengths")
    rows = (np.split(ids, np.cumsum(lens)[:-1].tolist()) if n else [])
    return tag, list(rows), digests


# -- reply frames ------------------------------------------------------------

def encode_text(message: str) -> np.ndarray:
    """UTF-8 message payload (error / fault notes): ``[nbytes, data...]``."""
    raw = message.encode("utf-8", "replace")[:4096]
    raw += b"\x00" * (-len(raw) % 4)
    out = np.empty(1 + len(raw) // 4, dtype=np.int32)
    out[0] = len(message.encode("utf-8", "replace")[:4096])
    if raw:
        out[1:] = np.frombuffer(raw, dtype=np.int32)
    return out


def decode_text(payload: np.ndarray) -> str:
    """Inverse of :func:`encode_text` (empty string on a short frame)."""
    if payload.size < 1:
        return ""
    n = int(payload[0])
    return payload[1:].tobytes()[:max(0, n)].decode("utf-8", "replace")


def _advice_flags(advice: Advice) -> int:
    return int(bool(advice.needs_directive)) | (int(bool(advice.degraded)) << 1)


def encode_result(method: str, result,
                  head_index: Optional[Dict[str, int]] = None) -> np.ndarray:
    """Encode one ``ok`` reply for ``method`` into a flat int32 frame.

    * ``predict_proba``: ``[n]`` + n x 2 float64 probability pairs.
    * ``advise_many``: ``[n, flags...]`` + n float64 probabilities.
    * ``advise_full_many``: ``[n]`` then per item ``[flags, p(2w),
      n_clauses]`` and per clause ``[head_id, cflags, p(2w)]`` —
      ``head_id`` indexes the fleet's shared head-name order
      (``head_index``).
    """
    if method == "predict_proba":
        arr = np.asarray(result, dtype=np.float64)
        return np.concatenate([
            np.asarray([arr.shape[0]], dtype=np.int32),
            _pack_floats(arr),
        ])
    if method == "advise_many":
        n = len(result)
        head = np.empty(1 + n, dtype=np.int32)
        head[0] = n
        for i, adv in enumerate(result):
            head[1 + i] = _advice_flags(adv)
        return np.concatenate(
            [head, _pack_floats([adv.probability for adv in result])])
    if method == "advise_full_many":
        head_index = head_index or {}
        parts: List[np.ndarray] = [np.asarray([len(result)], dtype=np.int32)]
        for full in result:
            flags = _advice_flags(full.directive) | (
                int(bool(full.degraded)) << 2)
            parts.append(np.asarray([flags], dtype=np.int32))
            parts.append(_pack_floats([full.directive.probability]))
            parts.append(np.asarray([len(full.clauses)], dtype=np.int32))
            for name, clause in full.clauses.items():
                parts.append(np.asarray(
                    [head_index.get(name, -1), int(bool(clause.suggested))],
                    dtype=np.int32))
                parts.append(_pack_floats([clause.probability]))
        return np.concatenate(parts)
    raise ValueError(f"no frame encoding for method {method!r}")


def decode_result(method: str, payload: np.ndarray,
                  head_names: Optional[Sequence[str]] = None):
    """Inverse of :func:`encode_result` (raises ``ValueError`` on a
    structurally impossible frame — the parent treats that as a fault)."""
    if payload.size < 1:
        raise ValueError("reply frame too short")
    n = int(payload[0])
    if n < 0:
        raise ValueError("negative item count in reply frame")
    if method == "predict_proba":
        probs = _unpack_floats(payload[1:1 + 4 * n]).reshape(n, 2)
        # one bulk astype, then split into rows — a per-row astype costs a
        # numpy call per snippet and dominates warm-path decode
        return list(probs.astype(get_dtype()))
    if method == "advise_many":
        flags = payload[1:1 + n]
        probs = _unpack_floats(payload[1 + n:1 + 3 * n])
        if flags.size != n or probs.size != n:
            raise ValueError("advise reply frame truncated")
        return [Advice(p, bool(f & 1), degraded=bool(f & 2))
                for f, p in zip(flags.tolist(), probs.tolist())]
    if method == "advise_full_many":
        head_names = list(head_names or [])
        out: List[FullAdvice] = []
        pos = 1
        for _ in range(n):
            if pos + 4 > payload.size:
                raise ValueError("full-advice reply frame truncated")
            flags = int(payload[pos])
            p_dir = float(_unpack_floats(payload[pos + 1:pos + 3])[0])
            n_clauses = int(payload[pos + 3])
            pos += 4
            if n_clauses < 0 or pos + 4 * n_clauses > payload.size:
                raise ValueError("full-advice clause block truncated")
            clauses: Dict[str, ClauseAdvice] = {}
            for _ in range(n_clauses):
                head_id = int(payload[pos])
                suggested = bool(payload[pos + 1] & 1)
                p = float(_unpack_floats(payload[pos + 2:pos + 4])[0])
                pos += 4
                if not 0 <= head_id < len(head_names):
                    raise ValueError(
                        f"clause head id {head_id} outside the fleet's "
                        f"{len(head_names)} heads")
                clauses[head_names[head_id]] = ClauseAdvice(p, suggested)
            out.append(FullAdvice(
                Advice(p_dir, bool(flags & 1), degraded=bool(flags & 2)),
                clauses, degraded=bool(flags & 4)))
        return out
    raise ValueError(f"no frame decoding for method {method!r}")
