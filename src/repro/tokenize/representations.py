"""The four code representations of §4.2 / Table 6.

* ``TEXT`` — the raw source tokens, lexed as text.
* ``R_TEXT`` — source tokens after canonical identifier replacement.
* ``AST`` — the DFS-flattened pycparser-style AST labels.
* ``R_AST`` — DFS labels after identifier replacement.

``represent`` yields the representation string; ``tokenize_representation``
yields its token list (what the vocabulary and models consume).  Text
representations are tokenized with the C lexer (each keyword, identifier,
operator and literal is one token); AST representations are whitespace-split,
matching "each line contains a single token" in §1.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.clang import Compound, TokenKind, parse, tokenize
from repro.clang.serialize import ast_to_dfs_text, unparse
from repro.tokenize.replace import build_replacement_map, rename_ast

__all__ = [
    "Representation",
    "represent",
    "tokenize_representation",
    "text_tokens",
    "robust_text_tokens",
    "ERROR_TOKEN",
]

#: Sentinel emitted by :func:`robust_text_tokens` in place of a malformed
#: region's raw text.  It is not in any trained vocabulary, so it encodes
#: to UNK — the model sees "something unrecognisable was here" rather than
#: garbage bytes, and the serving engine can count recovered snippets by
#: membership.
ERROR_TOKEN = "<error>"


class Representation(enum.Enum):
    TEXT = "text"
    R_TEXT = "replaced-text"
    AST = "ast"
    R_AST = "replaced-ast"


def represent(code: str, kind: Representation, ast: Optional[Compound] = None) -> str:
    """Render ``code`` in the given representation (pragmas never included)."""
    if kind is Representation.TEXT:
        return code
    tree = ast if ast is not None else parse(code)
    if kind is Representation.AST:
        return ast_to_dfs_text(tree)
    mapping = build_replacement_map(tree)
    renamed = rename_ast(tree, mapping)
    if kind is Representation.R_TEXT:
        return unparse(renamed)
    return ast_to_dfs_text(renamed)


def text_tokens(source: str) -> List[str]:
    """Lex C source into token strings (pragmas and EOF dropped)."""
    return [t.value for t in tokenize(source, keep_pragmas=False)[:-1]]


def robust_text_tokens(source: str) -> List[str]:
    """Like :func:`text_tokens`, but never raises on dirty input.

    Lexes in recover mode; each malformed region becomes one
    :data:`ERROR_TOKEN` in the output.  On clean input the result is
    identical to :func:`text_tokens`, which is what lets the serving path
    use this as its default tokenizer without perturbing cached encodings.
    """
    return [
        ERROR_TOKEN if t.kind is TokenKind.ERROR else t.value
        for t in tokenize(source, keep_pragmas=False, recover=True)[:-1]
    ]


def tokenize_representation(code: str, kind: Representation,
                            ast: Optional[Compound] = None) -> List[str]:
    """Token list for ``code`` under ``kind``."""
    rendered = represent(code, kind, ast=ast)
    if kind in (Representation.TEXT, Representation.R_TEXT):
        return text_tokens(rendered)
    return rendered.split()
