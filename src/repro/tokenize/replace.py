"""Identifier replacement (§4.2): ``var0``/``arr0``/``func0`` canonical names.

Classifies every identifier in an AST by usage — array (subscripted or
declared with dimensions), function (called), or plain variable — and renames
them to indexed canonical names in DFS first-appearance order, as in the
paper's Replaced-Text / Replaced-AST representations (Table 6).

C standard-library names (``fprintf``, ``sqrt``, ``rand`` …) and standard
streams are *kept*: they are API surface rather than developer-chosen naming,
and preserving them retains the I/O cues LIME surfaces in Figure 8 while
still removing the idiosyncratic naming that causes OOV blowup.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional

from repro.clang import Compound, parse
from repro.clang.nodes import ArrayRef, Call, Decl, FuncDef, Identifier, Node, walk
from repro.clang.pragma import Clause, OmpDirective, parse_pragma
from repro.clang.serialize import unparse

__all__ = [
    "STDLIB_NAMES",
    "build_replacement_map",
    "rename_ast",
    "replace_identifiers_in_code",
    "rename_directive",
]

#: Names never replaced: the C standard library subset that appears in HPC
#: loop snippets, plus standard streams and common macros.
STDLIB_NAMES = frozenset(
    """
    printf fprintf sprintf snprintf scanf fscanf sscanf puts putchar getchar
    fgetc fgets fputc fputs fread fwrite fopen fclose fflush fseek ftell
    malloc calloc realloc free memcpy memmove memset memcmp
    strlen strcpy strncpy strcmp strncmp strcat strchr strstr
    sqrt sqrtf fabs fabsf exp expf log logf log2 log10 pow powf
    sin cos tan asin acos atan atan2 sinh cosh tanh floor ceil round fmod
    fmax fmin abs labs
    rand srand random srandom
    exit abort assert
    stderr stdout stdin NULL EOF
    omp_get_thread_num omp_get_num_threads omp_get_wtime
    """.split()
)


def classify_identifiers(ast: Node) -> Dict[str, str]:
    """Map identifier name -> 'arr' | 'func' | 'var', in DFS order.

    A name used both as an array and a variable classifies as 'arr'; a name
    that is ever called classifies as 'func' (calls are the strongest cue).
    """
    kinds: Dict[str, str] = {}

    def note(name: str, kind: str) -> None:
        prev = kinds.get(name)
        rank = {"var": 0, "arr": 1, "func": 2}
        if prev is None or rank[kind] > rank[prev]:
            kinds[name] = kind

    for node in walk(ast):
        if isinstance(node, Call) and isinstance(node.func, Identifier):
            note(node.func.name, "func")
        elif isinstance(node, ArrayRef):
            base = node.array
            while isinstance(base, ArrayRef):
                base = base.array
            if isinstance(base, Identifier):
                note(base.name, "arr")
        elif isinstance(node, Decl):
            if node.array_dims:
                note(node.name, "arr")
            else:
                note(node.name, "var")
        elif isinstance(node, FuncDef):
            note(node.name, "func")
        elif isinstance(node, Identifier):
            note(node.name, "var")
    return kinds


def build_replacement_map(ast: Node) -> Dict[str, str]:
    """Assign ``var0, var1, …`` / ``arr0, …`` / ``func0, …`` in DFS order."""
    kinds = classify_identifiers(ast)
    counters = {"var": 0, "arr": 0, "func": 0}
    mapping: Dict[str, str] = {}
    # walk again so numbering follows first appearance, not dict order
    for node in walk(ast):
        names = []
        if isinstance(node, Identifier):
            names.append(node.name)
        elif isinstance(node, (Decl, FuncDef)):
            names.append(node.name)
        for name in names:
            if name in mapping or name in STDLIB_NAMES or name not in kinds:
                continue
            kind = kinds[name]
            mapping[name] = f"{kind}{counters[kind]}"
            counters[kind] += 1
    return mapping


def rename_ast(ast: Node, mapping: Dict[str, str]) -> Node:
    """Return a deep copy of ``ast`` with identifiers renamed per ``mapping``."""
    clone = copy.deepcopy(ast)
    for node in walk(clone):
        if isinstance(node, Identifier) and node.name in mapping:
            node.name = mapping[node.name]
        elif isinstance(node, (Decl, FuncDef)) and node.name in mapping:
            node.name = mapping[node.name]
    return clone


def rename_directive(directive: str, mapping: Dict[str, str]) -> str:
    """Rename variable references inside a pragma's clauses."""
    omp = parse_pragma(directive)
    new_clauses = []
    for cl in omp.clauses:
        if cl.name == "reduction":
            args = []
            for arg in cl.args:
                op, var = arg.split(":", 1)
                args.append(f"{op}:{mapping.get(var.strip(), var.strip())}")
            new_clauses.append(Clause(cl.name, tuple(args)))
        elif cl.name in ("private", "firstprivate", "lastprivate", "shared"):
            args = tuple(mapping.get(a, a) for a in cl.args)
            new_clauses.append(Clause(cl.name, args))
        else:
            new_clauses.append(cl)
    return OmpDirective(omp.construct, new_clauses).unparse()


def replace_identifiers_in_code(code: str, ast: Optional[Compound] = None) -> str:
    """Parse ``code``, rename identifiers canonically, and unparse."""
    tree = ast if ast is not None else parse(code)
    mapping = build_replacement_map(tree)
    return unparse(rename_ast(tree, mapping))
