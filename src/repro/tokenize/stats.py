"""Type-level corpus statistics per representation — Table 7."""

from __future__ import annotations

from typing import Dict

from repro.data.encoding import TokenCache
from repro.data.splits import DatasetSplits
from repro.tokenize.representations import Representation
from repro.tokenize.vocab import Vocab

__all__ = ["representation_stats"]


def representation_stats(
    splits: DatasetSplits,
    rep: Representation,
    cache: TokenCache = None,
) -> Dict[str, float]:
    """Vocab size (train types), OOV types (val+test types absent from
    train), and average snippet token length — the three rows of Table 7."""
    cache = cache or TokenCache()
    train_streams = [cache.tokens(ex.record, rep) for ex in splits.train]
    heldout_streams = [
        cache.tokens(ex.record, rep)
        for ex in list(splits.validation) + list(splits.test)
    ]
    vocab = Vocab.build(train_streams)
    all_streams = train_streams + heldout_streams
    avg_len = sum(len(s) for s in all_streams) / max(1, len(all_streams))
    # specials are bookkeeping tokens, not corpus types
    n_specials = 4
    return {
        "train_vocab_size": len(vocab) - n_specials,
        "oov_types": vocab.oov_types(heldout_streams),
        "avg_length": avg_len,
    }
