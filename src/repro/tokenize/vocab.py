"""Vocabulary with special tokens and OOV handling.

The vocabulary is built over *training-set* token streams only; validation
and test tokens missing from it are OOV and map to ``<unk>`` (§4.2).  Special
tokens follow the RoBERTa convention the paper's tokenizer inherits:
``<pad>``, ``<unk>``, ``<cls>`` (sequence-level classification slot), and
``<mask>`` (MLM pretraining).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence

import numpy as np

__all__ = ["Vocab", "PAD, UNK, CLS, MASK".replace(" ", "")]

PAD = "<pad>"
UNK = "<unk>"
CLS = "<cls>"
MASK = "<mask>"

SPECIALS = (PAD, UNK, CLS, MASK)


class Vocab:
    """Token <-> id mapping with frequency-based construction."""

    def __init__(self, tokens: Sequence[str]) -> None:
        self._itos: List[str] = list(SPECIALS) + [t for t in tokens if t not in SPECIALS]
        self._stoi: Dict[str, int] = {t: i for i, t in enumerate(self._itos)}

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, token_streams: Iterable[Sequence[str]], min_freq: int = 1,
              max_size: int = 0) -> "Vocab":
        """Build from an iterable of token lists.

        ``min_freq`` drops rare types; ``max_size`` (0 = unlimited) keeps the
        most frequent types.  Ties break lexicographically for determinism.
        """
        counter: Counter = Counter()
        for stream in token_streams:
            counter.update(stream)
        items = sorted(counter.items(), key=lambda kv: (-kv[1], kv[0]))
        kept = [tok for tok, freq in items if freq >= min_freq]
        if max_size > 0:
            kept = kept[: max_size]
        return cls(kept)

    # -- mapping -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._itos)

    def __contains__(self, token: str) -> bool:
        return token in self._stoi

    @property
    def pad_id(self) -> int:
        return self._stoi[PAD]

    @property
    def unk_id(self) -> int:
        return self._stoi[UNK]

    @property
    def cls_id(self) -> int:
        return self._stoi[CLS]

    @property
    def mask_id(self) -> int:
        return self._stoi[MASK]

    def token_to_id(self, token: str) -> int:
        return self._stoi.get(token, self._stoi[UNK])

    def id_to_token(self, idx: int) -> str:
        return self._itos[idx]

    def encode(self, tokens: Sequence[str], max_len: int = 0,
               add_cls: bool = True) -> np.ndarray:
        """Encode to int32 ids, optionally prepending CLS and truncating.

        int32 is the pipeline-wide id dtype (``repro.data.encoding.ID_DTYPE``)
        — vocabularies never approach 2**31 entries and the narrower ids
        halve embedding-gather index traffic."""
        ids = [self.cls_id] if add_cls else []
        ids.extend(self._stoi.get(t, self._stoi[UNK]) for t in tokens)
        if max_len > 0:
            ids = ids[:max_len]
        return np.asarray(ids, dtype=np.int32)

    def decode(self, ids: Sequence[int]) -> List[str]:
        return [self._itos[int(i)] for i in ids]

    def oov_types(self, token_streams: Iterable[Sequence[str]]) -> int:
        """Count distinct types in ``token_streams`` absent from this vocab
        (the 'OOV types' row of Table 7)."""
        types = set()
        for stream in token_streams:
            types.update(stream)
        return sum(1 for t in types if t not in self._stoi)
