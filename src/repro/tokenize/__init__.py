"""Tokenization: the four code representations, identifier replacement, and
vocabulary with OOV accounting (§4.2, Tables 6–7)."""

from repro.tokenize.replace import (
    STDLIB_NAMES,
    build_replacement_map,
    rename_ast,
    rename_directive,
    replace_identifiers_in_code,
)
from repro.tokenize.representations import (
    ERROR_TOKEN,
    Representation,
    represent,
    robust_text_tokens,
    text_tokens,
    tokenize_representation,
)
from repro.tokenize.vocab import CLS, MASK, PAD, UNK, Vocab

__all__ = [
    "STDLIB_NAMES",
    "build_replacement_map",
    "rename_ast",
    "rename_directive",
    "replace_identifiers_in_code",
    "Representation",
    "represent",
    "text_tokens",
    "robust_text_tokens",
    "ERROR_TOKEN",
    "tokenize_representation",
    "Vocab",
    "PAD",
    "UNK",
    "CLS",
    "MASK",
]
