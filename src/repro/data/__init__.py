"""Dataset splits (Table 5) and model-ready encodings for the directive and
clause classification tasks."""

from repro.data.encoding import (
    DEFAULT_MAX_LEN,
    EncodedDataset,
    EncodedSplit,
    TokenCache,
    encode_batch,
    encode_dataset,
    pad_encoded,
)
from repro.data.splits import (
    DatasetSplits,
    Example,
    make_clause_dataset,
    make_directive_dataset,
)

__all__ = [
    "DEFAULT_MAX_LEN",
    "EncodedDataset",
    "EncodedSplit",
    "TokenCache",
    "encode_batch",
    "encode_dataset",
    "pad_encoded",
    "DatasetSplits",
    "Example",
    "make_clause_dataset",
    "make_directive_dataset",
]
