"""Encoding labelled examples into padded id matrices for the models.

The tokenization of 17k snippets across four representations is the data
pipeline's hot path, so token lists are memoized per (record uid,
representation) — records are immutable once built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.corpus.records import Record
from repro.data.splits import DatasetSplits, Example
from repro.tokenize import Representation, Vocab, tokenize_representation

__all__ = ["TokenCache", "EncodedSplit", "EncodedDataset", "encode_dataset",
           "encode_batch", "pad_encoded", "MASK_DTYPE", "ID_DTYPE"]

#: Padding masks are kept in the compute dtype; float64 masks would both
#: double their memory traffic and silently upcast attention scores.
MASK_DTYPE = np.float32

#: Token/position ids are int32 end-to-end: vocabularies top out in the
#: tens of thousands and sequences at 110 tokens, so int64 ids just doubled
#: the index traffic through every embedding gather and id-digest hash.
ID_DTYPE = np.int32

#: §4.3 — the longest snippet in the paper's corpus had 110 tokens.
DEFAULT_MAX_LEN = 110


class TokenCache:
    """Memoized tokenization of records under each representation."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple[int, Representation], List[str]] = {}

    def tokens(self, record: Record, rep: Representation) -> List[str]:
        key = (record.uid, rep)
        hit = self._cache.get(key)
        if hit is None:
            hit = tokenize_representation(record.code, rep, ast=record.ast)
            self._cache[key] = hit
        return hit


@dataclass
class EncodedSplit:
    """Padded token ids, attention mask, and labels for one split."""

    ids: np.ndarray    # (N, L) int32, PAD-padded
    mask: np.ndarray   # (N, L) float32, 1 where real token
    labels: np.ndarray  # (N,) int64
    #: lazily-cached ascending-length row order (see :meth:`length_order`)
    _length_order: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False)

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    def length_order(self) -> np.ndarray:
        """Row indices sorted by real (unpadded) length, ascending.

        ``evaluate``/``predict_proba`` walk every split in this order so
        ``trim_batch`` gets near-uniform batches; the argsort is cached on
        first use since splits are immutable once encoded and the order
        used to be recomputed on every call.
        """
        if self._length_order is None:
            self._length_order = np.argsort(self.mask.sum(axis=1), kind="stable")
        return self._length_order


def pad_encoded(
    encoded: Sequence[np.ndarray],
    pad_id: int,
    width: Optional[int] = None,
    labels: Optional[Sequence[int]] = None,
) -> EncodedSplit:
    """Pack already-encoded id rows into a padded :class:`EncodedSplit`.

    ``width=None`` pads to the longest row only — downstream batched
    inference trims to the longest real row anyway, so padding to a global
    ``max_len`` just wastes allocation.  Pass an explicit ``width`` when a
    fixed matrix shape is required (e.g. dataset splits indexed together).
    """
    n = len(encoded)
    if width is None:
        width = max((len(row) for row in encoded), default=1)
    ids = np.full((n, width), pad_id, dtype=ID_DTYPE)
    mask = np.zeros((n, width), dtype=MASK_DTYPE)
    for row, enc in enumerate(encoded):
        ids[row, : len(enc)] = enc
        mask[row, : len(enc)] = 1.0
    if labels is None:
        labels_arr = np.zeros(n, dtype=np.int64)
    else:
        labels_arr = np.asarray(labels, dtype=np.int64)
    return EncodedSplit(ids, mask, labels_arr)


def encode_batch(
    token_lists: Sequence[Sequence[str]],
    vocab: Vocab,
    max_len: int,
    labels: Optional[Sequence[int]] = None,
    width: Optional[int] = None,
) -> EncodedSplit:
    """Encode pre-tokenized snippets into one padded, model-ready split.

    The single entry point for ad-hoc inference batches (CLI advisor, LIME
    perturbations, benchmark suites, the serving engine): CLS-prepends,
    truncates to ``max_len``, and pads (see :func:`pad_encoded`)."""
    return pad_encoded(
        [vocab.encode(toks, max_len=max_len) for toks in token_lists],
        vocab.pad_id, width=width, labels=labels,
    )


@dataclass
class EncodedDataset:
    """All three splits plus the vocabulary built from training tokens."""

    train: EncodedSplit
    validation: EncodedSplit
    test: EncodedSplit
    vocab: Vocab
    representation: Representation
    max_len: int


def _encode_split(
    examples: Sequence[Example],
    vocab: Vocab,
    rep: Representation,
    max_len: int,
    cache: TokenCache,
) -> EncodedSplit:
    return encode_batch(
        [cache.tokens(ex.record, rep) for ex in examples], vocab, max_len,
        labels=[ex.label for ex in examples], width=max_len,
    )


def encode_dataset(
    splits: DatasetSplits,
    rep: Representation,
    max_len: int = DEFAULT_MAX_LEN,
    min_freq: int = 1,
    cache: TokenCache = None,
    vocab: Vocab = None,
) -> EncodedDataset:
    """Encode all splits; builds the vocabulary on the training split unless
    a shared ``vocab`` is supplied (the paper uses one tokenizer for all
    representations)."""
    cache = cache or TokenCache()
    if vocab is None:
        train_streams = [cache.tokens(ex.record, rep) for ex in splits.train]
        vocab = Vocab.build(train_streams, min_freq=min_freq)
    return EncodedDataset(
        train=_encode_split(splits.train, vocab, rep, max_len, cache),
        validation=_encode_split(splits.validation, vocab, rep, max_len, cache),
        test=_encode_split(splits.test, vocab, rep, max_len, cache),
        vocab=vocab,
        representation=rep,
        max_len=max_len,
    )
