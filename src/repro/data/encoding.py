"""Encoding labelled examples into padded id matrices for the models.

The tokenization of 17k snippets across four representations is the data
pipeline's hot path, so token lists are memoized per (record uid,
representation) — records are immutable once built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.corpus.records import Record
from repro.data.splits import DatasetSplits, Example
from repro.tokenize import Representation, Vocab, tokenize_representation

__all__ = ["TokenCache", "EncodedSplit", "EncodedDataset", "encode_dataset"]

#: §4.3 — the longest snippet in the paper's corpus had 110 tokens.
DEFAULT_MAX_LEN = 110


class TokenCache:
    """Memoized tokenization of records under each representation."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple[int, Representation], List[str]] = {}

    def tokens(self, record: Record, rep: Representation) -> List[str]:
        key = (record.uid, rep)
        hit = self._cache.get(key)
        if hit is None:
            hit = tokenize_representation(record.code, rep, ast=record.ast)
            self._cache[key] = hit
        return hit


@dataclass
class EncodedSplit:
    """Padded token ids, attention mask, and labels for one split."""

    ids: np.ndarray    # (N, L) int64, PAD-padded
    mask: np.ndarray   # (N, L) float64, 1 where real token
    labels: np.ndarray  # (N,) int64

    def __len__(self) -> int:
        return int(self.ids.shape[0])


@dataclass
class EncodedDataset:
    """All three splits plus the vocabulary built from training tokens."""

    train: EncodedSplit
    validation: EncodedSplit
    test: EncodedSplit
    vocab: Vocab
    representation: Representation
    max_len: int


def _encode_split(
    examples: Sequence[Example],
    vocab: Vocab,
    rep: Representation,
    max_len: int,
    cache: TokenCache,
) -> EncodedSplit:
    n = len(examples)
    ids = np.full((n, max_len), vocab.pad_id, dtype=np.int64)
    mask = np.zeros((n, max_len), dtype=np.float64)
    labels = np.empty(n, dtype=np.int64)
    for row, ex in enumerate(examples):
        enc = vocab.encode(cache.tokens(ex.record, rep), max_len=max_len)
        ids[row, : len(enc)] = enc
        mask[row, : len(enc)] = 1.0
        labels[row] = ex.label
    return EncodedSplit(ids, mask, labels)


def encode_dataset(
    splits: DatasetSplits,
    rep: Representation,
    max_len: int = DEFAULT_MAX_LEN,
    min_freq: int = 1,
    cache: TokenCache = None,
    vocab: Vocab = None,
) -> EncodedDataset:
    """Encode all splits; builds the vocabulary on the training split unless
    a shared ``vocab`` is supplied (the paper uses one tokenizer for all
    representations)."""
    cache = cache or TokenCache()
    if vocab is None:
        train_streams = [cache.tokens(ex.record, rep) for ex in splits.train]
        vocab = Vocab.build(train_streams, min_freq=min_freq)
    return EncodedDataset(
        train=_encode_split(splits.train, vocab, rep, max_len, cache),
        validation=_encode_split(splits.validation, vocab, rep, max_len, cache),
        test=_encode_split(splits.test, vocab, rep, max_len, cache),
        vocab=vocab,
        representation=rep,
        max_len=max_len,
    )
