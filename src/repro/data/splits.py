"""Dataset construction: the 80/10/10 splits of §3.2 and Table 5.

Two datasets are derived from the corpus:

* the **directive** dataset — every record, labelled by whether it carries an
  OpenMP directive (RQ1);
* the **clause** datasets — directive-carrying records only, labelled by the
  presence of a ``private`` or ``reduction`` clause (RQ2), optionally
  balanced 50/50 by subsampling the majority class as §5.3 does.

Splits are random at the instance level and stratified so each split keeps
the same label distribution ("maintaining a balanced positive–negative label
distribution in each dataset").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.corpus.builder import Corpus
from repro.corpus.records import Record
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["Example", "DatasetSplits", "make_directive_dataset", "make_clause_dataset"]


@dataclass(frozen=True)
class Example:
    """One labelled instance."""

    record: Record
    label: int  # 0 or 1


@dataclass
class DatasetSplits:
    """Train/validation/test splits of labelled examples."""

    train: List[Example]
    validation: List[Example]
    test: List[Example]
    task: str = ""

    def sizes(self) -> Dict[str, int]:
        """The rows of Table 5."""
        return {
            "train": len(self.train),
            "validation": len(self.validation),
            "test": len(self.test),
        }

    def label_fractions(self) -> Dict[str, float]:
        out = {}
        for name, split in (("train", self.train), ("validation", self.validation),
                            ("test", self.test)):
            out[name] = (sum(e.label for e in split) / len(split)) if split else 0.0
        return out


def _stratified_split(
    examples: List[Example],
    ratios: Tuple[float, float, float],
    rng: np.random.Generator,
) -> DatasetSplits:
    """Split while preserving the label ratio in every split."""
    if abs(sum(ratios) - 1.0) > 1e-9:
        raise ValueError(f"split ratios must sum to 1, got {ratios}")
    by_label: Dict[int, List[Example]] = {0: [], 1: []}
    for ex in examples:
        by_label[ex.label].append(ex)
    train: List[Example] = []
    val: List[Example] = []
    test: List[Example] = []
    for label_examples in by_label.values():
        order = rng.permutation(len(label_examples))
        shuffled = [label_examples[int(k)] for k in order]
        n = len(shuffled)
        n_train = int(round(ratios[0] * n))
        n_val = int(round(ratios[1] * n))
        train.extend(shuffled[:n_train])
        val.extend(shuffled[n_train : n_train + n_val])
        test.extend(shuffled[n_train + n_val :])
    # shuffle within each split so labels are not grouped
    for split in (train, val, test):
        order = rng.permutation(len(split))
        split[:] = [split[int(k)] for k in order]
    return DatasetSplits(train, val, test)


def make_directive_dataset(
    corpus: Corpus,
    ratios: Tuple[float, float, float] = (0.8, 0.1, 0.1),
    rng: RngLike = None,
) -> DatasetSplits:
    """RQ1 dataset: does this snippet need an OpenMP directive?"""
    gen = ensure_rng(rng)
    examples = [Example(rec, int(rec.has_omp)) for rec in corpus]
    splits = _stratified_split(examples, ratios, gen)
    splits.task = "directive"
    return splits


def make_clause_dataset(
    corpus: Corpus,
    clause: str,
    ratios: Tuple[float, float, float] = (0.8, 0.1, 0.1),
    balance: bool = True,
    rng: RngLike = None,
) -> DatasetSplits:
    """RQ2 dataset: does this parallelizable snippet need ``clause``?

    ``clause`` is 'private', 'reduction', or 'schedule_dynamic' (the §6
    future-work task of predicting the scheduling construct).  With
    ``balance=True`` the majority class is subsampled to a 50/50 label
    distribution (§5.3).
    """
    if clause not in ("private", "reduction", "schedule_dynamic"):
        raise ValueError(
            f"clause must be 'private', 'reduction' or 'schedule_dynamic', got {clause!r}")
    gen = ensure_rng(rng)
    examples: List[Example] = []
    for rec in corpus.positives:
        if clause == "private":
            label = rec.label_private
        elif clause == "reduction":
            label = rec.label_reduction
        else:
            sched = rec.omp.schedule
            label = sched is not None and sched[0] == "dynamic"
        examples.append(Example(rec, int(bool(label))))
    if balance:
        pos = [e for e in examples if e.label == 1]
        neg = [e for e in examples if e.label == 0]
        n = min(len(pos), len(neg))
        pos_keep = [pos[int(k)] for k in gen.permutation(len(pos))[:n]]
        neg_keep = [neg[int(k)] for k in gen.permutation(len(neg))[:n]]
        examples = pos_keep + neg_keep
    splits = _stratified_split(examples, ratios, gen)
    splits.task = f"clause:{clause}"
    return splits
