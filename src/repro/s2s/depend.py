"""Data-dependence analysis for for-loops — the engine behind the S2S
compilers (§1.1's step 2: 'apply data dependence algorithms on the AST').

Given a loop (and any callee implementations found in the snippet), the
analyzer determines:

* whether any **loop-carried dependence** exists — array subscripts are
  solved with zero/strong-SIV tests on affine forms ``a*i + b``; non-affine
  or indirect subscripts are conservatively dependent;
* **scalar classes** — read-only, privatizable (written before read each
  iteration), reduction (``s = s ⊕ expr`` / ``s ⊕= expr`` with ``s`` not
  otherwise read), or carried (everything else);
* **side effects** — I/O and allocation calls, writes to globals inside
  callees, and unknown calls per the compiler's policy;
* **control legality** — ``break``/``goto``/``return`` inside the loop body.

The :class:`AnalysisPolicy` knobs reproduce the *different* conservatisms of
the paper's three compilers (Cetus / Par4All / AutoPar, §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.clang.nodes import (
    ArrayRef,
    Assignment,
    BinaryOp,
    Break,
    Call,
    Compound,
    Constant,
    Decl,
    DeclList,
    For,
    FuncDef,
    Goto,
    Identifier,
    Node,
    Return,
    StructRef,
    UnaryOp,
    walk,
)

__all__ = ["AnalysisPolicy", "LoopAnalysis", "analyze_loop", "loop_variable",
           "affine_subscript", "IO_FUNCTIONS", "PURE_FUNCTIONS", "ALLOC_FUNCTIONS"]

IO_FUNCTIONS = frozenset(
    """printf fprintf sprintf scanf fscanf sscanf puts putchar getchar fgetc
    fgets fputc fputs fread fwrite fopen fclose fflush fseek exit abort
    """.split()
)

PURE_FUNCTIONS = frozenset(
    """sqrt sqrtf fabs fabsf exp expf log logf log2 log10 pow powf sin cos
    tan asin acos atan atan2 sinh cosh tanh floor ceil round fmod fmax fmin
    abs labs""".split()
)

ALLOC_FUNCTIONS = frozenset("malloc calloc realloc free".split())

#: rand/srand mutate hidden global state
STATEFUL_FUNCTIONS = frozenset("rand srand random srandom".split())


@dataclass(frozen=True)
class AnalysisPolicy:
    """Conservatism knobs distinguishing the S2S compilers."""

    #: 'conservative' rejects loops calling unknown functions; 'pure'
    #: optimistically assumes no side effects (real Par4All-style pitfall).
    unknown_call: str = "conservative"
    #: analyze callee bodies included in the snippet (interprocedural)?
    analyze_callee_bodies: bool = True
    #: reduction operators the pattern-matcher recognises.  None of the
    #: paper's compilers detect if/ternary min-max reductions (Table 10).
    reduction_ops: frozenset = frozenset({"+", "-", "*"})
    #: skip loops whose literal trip count is below this (0 disables) — the
    #: Cetus profitability heuristic from §5.2.
    min_literal_trip: int = 0
    #: emit private(i) for the iteration variable when it is declared
    #: outside the loop — the ComPar behaviour behind Table 9.
    private_iteration_var: bool = True


@dataclass
class LoopAnalysis:
    """Verdict for one loop."""

    parallelizable: bool
    reasons: List[str] = field(default_factory=list)
    private: List[str] = field(default_factory=list)
    reductions: List[Tuple[str, str]] = field(default_factory=list)
    loop_var: Optional[str] = None
    skipped_unprofitable: bool = False


# ---------------------------------------------------------------------------
# Loop header analysis
# ---------------------------------------------------------------------------


def loop_variable(loop: For) -> Optional[str]:
    """The canonical induction variable, or None for non-canonical loops
    (e.g. pointer chases ``p = p->next``)."""
    candidate: Optional[str] = None
    if isinstance(loop.init, Decl):
        candidate = loop.init.name
    elif loop.init is not None:
        expr = loop.init.expr if hasattr(loop.init, "expr") else loop.init
        if isinstance(expr, Assignment) and isinstance(expr.lvalue, Identifier):
            candidate = expr.lvalue.name
    if candidate is None and loop.nxt is not None:
        nxt = loop.nxt
        if isinstance(nxt, UnaryOp) and isinstance(nxt.expr, Identifier):
            candidate = nxt.expr.name
        elif isinstance(nxt, Assignment) and isinstance(nxt.lvalue, Identifier):
            candidate = nxt.lvalue.name
    if candidate is None:
        return None
    # the increment must be an affine step of the same variable
    if loop.nxt is not None:
        ok = False
        nxt = loop.nxt
        if isinstance(nxt, UnaryOp) and nxt.op in ("++", "--", "p++", "p--"):
            ok = isinstance(nxt.expr, Identifier) and nxt.expr.name == candidate
        elif isinstance(nxt, Assignment) and isinstance(nxt.lvalue, Identifier):
            if nxt.lvalue.name == candidate:
                if nxt.op in ("+=", "-="):
                    ok = True
                elif nxt.op == "=":
                    ok = affine_subscript(nxt.rvalue, candidate) is not None
        if not ok:
            return None
    return candidate


def literal_trip_count(loop: For, var: str) -> Optional[int]:
    """Trip count when both bounds are integer literals, else None."""
    start = None
    if isinstance(loop.init, Decl) and isinstance(loop.init.init, Constant):
        start = _int_const(loop.init.init)
    elif loop.init is not None and hasattr(loop.init, "expr"):
        expr = loop.init.expr
        if isinstance(expr, Assignment) and isinstance(expr.rvalue, Constant):
            start = _int_const(expr.rvalue)
    if start is None or loop.cond is None or not isinstance(loop.cond, BinaryOp):
        return None
    bound = loop.cond.right
    if not isinstance(bound, Constant):
        return None
    end = _int_const(bound)
    if end is None:
        return None
    if loop.cond.op == "<":
        return max(0, end - start)
    if loop.cond.op == "<=":
        return max(0, end - start + 1)
    return None


def _int_const(node: Node) -> Optional[int]:
    if isinstance(node, Constant) and node.ctype == "int":
        try:
            return int(node.value.rstrip("uUlL"), 0)
        except ValueError:
            return None
    return None


# ---------------------------------------------------------------------------
# Affine subscript recognition
# ---------------------------------------------------------------------------


def affine_subscript(expr: Node, var: str) -> Optional[Tuple[int, int]]:
    """Return (coef, offset) if ``expr == coef*var + offset`` with integer
    literals, else None.  Subscripts mentioning other variables are not
    affine *in var* and return None."""
    result = _affine(expr, var)
    return result


def _affine(expr: Node, var: str) -> Optional[Tuple[int, int]]:
    if isinstance(expr, Identifier):
        return (1, 0) if expr.name == var else None
    const = _int_const(expr)
    if const is not None:
        return (0, const)
    if isinstance(expr, UnaryOp) and expr.op == "-":
        inner = _affine(expr.expr, var)
        if inner is not None:
            return (-inner[0], -inner[1])
        return None
    if isinstance(expr, BinaryOp):
        left = _affine(expr.left, var)
        right = _affine(expr.right, var)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return (left[0] + right[0], left[1] + right[1])
        if expr.op == "-":
            return (left[0] - right[0], left[1] - right[1])
        if expr.op == "*":
            if left[0] == 0:
                return (left[1] * right[0], left[1] * right[1])
            if right[0] == 0:
                return (left[0] * right[1], left[1] * right[1])
            return None
    return None


def _mentions(expr: Node, name: str) -> bool:
    return any(isinstance(n, Identifier) and n.name == name for n in walk(expr))


# ---------------------------------------------------------------------------
# Access collection
# ---------------------------------------------------------------------------


@dataclass
class _Accesses:
    array_writes: List[Tuple[str, Tuple[Node, ...]]] = field(default_factory=list)
    array_reads: List[Tuple[str, Tuple[Node, ...]]] = field(default_factory=list)
    #: scalar events in program order: (name, 'r'|'w'|'rw', top-level stmt id,
    #: reduction op or None)
    scalar_events: List[Tuple[str, str, int, Optional[str]]] = field(default_factory=list)
    calls: List[str] = field(default_factory=list)
    inner_loop_vars: List[str] = field(default_factory=list)
    local_decls: Set[str] = field(default_factory=set)
    illegal_control: Optional[str] = None
    pointer_writes: bool = False


def _array_base_and_subs(node: Node) -> Optional[Tuple[str, Tuple[Node, ...]]]:
    """Resolve A[e1][e2]… or parts[e].field to (base name, subscripts)."""
    subs: List[Node] = []
    cur = node
    while True:
        if isinstance(cur, ArrayRef):
            subs.append(cur.subscript)
            cur = cur.array
        elif isinstance(cur, StructRef):
            cur = cur.obj
        elif isinstance(cur, Identifier):
            return cur.name, tuple(reversed(subs))
        else:
            return None


def _collect(node: Node, acc: _Accesses, stmt_id: List[int], depth: int) -> None:
    """Walk statements/expressions, recording accesses in program order."""
    if isinstance(node, Compound):
        for s in node.stmts:
            stmt_id[0] += 1
            _collect(s, acc, stmt_id, depth)
        return
    if isinstance(node, (Break, Goto, Return)):
        acc.illegal_control = type(node).__name__.lower()
        return
    if isinstance(node, For):
        var = loop_variable(node)
        if var is not None:
            acc.inner_loop_vars.append(var)
        if isinstance(node.init, Decl):
            # `for (int j = ...)` declares j locally: no clause needed
            acc.local_decls.add(node.init.name)
        for part in (node.init, node.cond, node.nxt):
            if part is not None:
                _collect_expr(part, acc, stmt_id, write_roots=(), skip_scalars={var} if var else set())
        _collect(node.body, acc, stmt_id, depth + 1)
        return
    if isinstance(node, (Decl,)):
        acc.local_decls.add(node.name)
        if node.init is not None:
            _collect_expr(node.init, acc, stmt_id)
        return
    if isinstance(node, DeclList):
        for d in node.decls:
            _collect(d, acc, stmt_id, depth)
        return
    if hasattr(node, "expr") and type(node).__name__ == "ExprStmt":
        _collect_expr(node.expr, acc, stmt_id)
        return
    if hasattr(node, "cond") and type(node).__name__ in ("If", "While", "DoWhile", "Switch"):
        _collect_expr(node.cond, acc, stmt_id)
        for child in node.children():
            if child is not node.cond:
                _collect(child, acc, stmt_id, depth)
        return
    # anything else: recurse generically
    for child in node.children():
        _collect(child, acc, stmt_id, depth)


def _collect_expr(expr: Node, acc: _Accesses, stmt_id: List[int],
                  write_roots: Tuple[Node, ...] = (),
                  skip_scalars: Optional[Set[str]] = None) -> None:
    skip = skip_scalars or set()
    if isinstance(expr, Assignment):
        lv = expr.lvalue
        resolved = None
        if isinstance(lv, (ArrayRef, StructRef)):
            resolved = _array_base_and_subs(lv)
        if resolved is not None and resolved[1]:
            acc.array_writes.append((resolved[0], resolved[1]))
            for sub in resolved[1]:
                _collect_expr(sub, acc, stmt_id, skip_scalars=skip)
        elif isinstance(lv, Identifier):
            red_op = None
            if expr.op in ("+=", "-=", "*="):
                red_op = expr.op[0]
                acc.scalar_events.append((lv.name, "rw", stmt_id[0], red_op))
            elif expr.op == "=":
                red_op = _reduction_form(expr.rvalue, lv.name)
                kind = "rw" if _mentions(expr.rvalue, lv.name) else "w"
                acc.scalar_events.append((lv.name, kind, stmt_id[0], red_op))
            else:
                acc.scalar_events.append((lv.name, "rw", stmt_id[0], None))
            if red_op is not None:
                # the self-read of `s = s ⊕ e` is part of the reduction
                # pattern, not a standalone read that would disqualify it
                skip = skip | {lv.name}
        elif isinstance(lv, UnaryOp) and lv.op == "*":
            acc.pointer_writes = True
        elif isinstance(lv, (ArrayRef, StructRef)):
            # struct scalar (p.x) or unresolvable — treat as pointer write
            acc.pointer_writes = True
        _collect_expr(expr.rvalue, acc, stmt_id, skip_scalars=skip)
        return
    if isinstance(expr, UnaryOp) and expr.op in ("++", "--", "p++", "p--"):
        target = expr.expr
        if isinstance(target, Identifier):
            op = "+" if expr.op in ("++", "p++") else "-"
            if target.name not in skip:
                acc.scalar_events.append((target.name, "rw", stmt_id[0], op))
        else:
            resolved = _array_base_and_subs(target) if isinstance(target, (ArrayRef, StructRef)) else None
            if resolved is not None and resolved[1]:
                acc.array_writes.append((resolved[0], resolved[1]))
                acc.array_reads.append((resolved[0], resolved[1]))
        return
    if isinstance(expr, Call):
        if isinstance(expr.func, Identifier):
            acc.calls.append(expr.func.name)
        for arg in expr.args:
            # address-of args may be written by the callee (scanf)
            if isinstance(arg, UnaryOp) and arg.op == "&":
                acc.pointer_writes = acc.pointer_writes or isinstance(arg.expr, Identifier)
                resolved = (_array_base_and_subs(arg.expr)
                            if isinstance(arg.expr, (ArrayRef, StructRef)) else None)
                if resolved is not None and resolved[1]:
                    acc.array_writes.append((resolved[0], resolved[1]))
            _collect_expr(arg, acc, stmt_id, skip_scalars=skip)
        return
    if isinstance(expr, (ArrayRef, StructRef)):
        resolved = _array_base_and_subs(expr)
        if resolved is not None and resolved[1]:
            acc.array_reads.append((resolved[0], resolved[1]))
            for sub in resolved[1]:
                _collect_expr(sub, acc, stmt_id, skip_scalars=skip)
            return
    if isinstance(expr, Identifier):
        if expr.name not in skip:
            acc.scalar_events.append((expr.name, "r", stmt_id[0], None))
        return
    for child in expr.children():
        _collect_expr(child, acc, stmt_id, skip_scalars=skip)


def _reduction_form(rvalue: Node, name: str) -> Optional[str]:
    """Detect ``s = s ⊕ rest`` / ``s = rest ⊕ s`` where rest omits s."""
    if isinstance(rvalue, BinaryOp) and rvalue.op in ("+", "*", "-"):
        left_is = isinstance(rvalue.left, Identifier) and rvalue.left.name == name
        right_is = isinstance(rvalue.right, Identifier) and rvalue.right.name == name
        if left_is and not _mentions(rvalue.right, name):
            return rvalue.op
        if right_is and rvalue.op in ("+", "*") and not _mentions(rvalue.left, name):
            return rvalue.op
    return None


# ---------------------------------------------------------------------------
# Callee side-effect analysis
# ---------------------------------------------------------------------------


def callee_has_side_effects(func: FuncDef) -> bool:
    """A callee is impure if it writes any name that is neither a parameter
    nor locally declared, or performs I/O / allocation / stateful calls."""
    locals_: Set[str] = {p.name for p in func.params}
    for node in walk(func.body):
        if isinstance(node, Decl):
            locals_.add(node.name)
    for node in walk(func.body):
        if isinstance(node, Assignment):
            lv = node.lvalue
            base = lv
            while isinstance(base, (ArrayRef, StructRef)):
                base = base.array if isinstance(base, ArrayRef) else base.obj
            if isinstance(base, Identifier) and base.name not in locals_:
                return True
        if isinstance(node, UnaryOp) and node.op in ("++", "--", "p++", "p--"):
            if isinstance(node.expr, Identifier) and node.expr.name not in locals_:
                return True
        if isinstance(node, Call) and isinstance(node.func, Identifier):
            callee = node.func.name
            if callee in IO_FUNCTIONS or callee in ALLOC_FUNCTIONS or callee in STATEFUL_FUNCTIONS:
                return True
    return False


# ---------------------------------------------------------------------------
# Main verdict
# ---------------------------------------------------------------------------


def analyze_loop(
    loop: For,
    funcdefs: Optional[Dict[str, FuncDef]] = None,
    policy: Optional[AnalysisPolicy] = None,
) -> LoopAnalysis:
    """Decide parallelizability of ``loop`` and infer clauses."""
    policy = policy or AnalysisPolicy()
    funcdefs = funcdefs or {}
    out = LoopAnalysis(parallelizable=False)

    var = loop_variable(loop)
    if var is None:
        out.reasons.append("non-canonical loop (no affine induction variable)")
        return out
    out.loop_var = var

    acc = _Accesses()
    _collect(loop.body, acc, [0], 0)

    if acc.illegal_control:
        out.reasons.append(f"illegal control flow: {acc.illegal_control}")
        return out
    if acc.pointer_writes:
        out.reasons.append("write through pointer/struct scalar")
        return out

    # --- calls ---------------------------------------------------------------
    for callee in acc.calls:
        if callee in PURE_FUNCTIONS:
            continue
        if callee in IO_FUNCTIONS or callee in ALLOC_FUNCTIONS or callee in STATEFUL_FUNCTIONS:
            out.reasons.append(f"side-effecting call: {callee}")
            return out
        if policy.analyze_callee_bodies and callee in funcdefs:
            if callee_has_side_effects(funcdefs[callee]):
                out.reasons.append(f"callee {callee} has side effects")
                return out
            continue
        if policy.unknown_call == "conservative":
            out.reasons.append(f"unknown function: {callee}")
            return out
        # 'pure' policy: optimistically continue

    # --- array dependences ----------------------------------------------------
    for w_name, w_subs in acc.array_writes:
        partners = [(n, s) for n, s in acc.array_writes + acc.array_reads if n == w_name]
        for _, p_subs in partners:
            if not _independent_pair(w_subs, p_subs, var):
                out.reasons.append(f"loop-carried dependence on array {w_name}")
                return out

    # --- scalars ------------------------------------------------------------------
    inner_vars = set(acc.inner_loop_vars)
    reductions: List[Tuple[str, str]] = []
    private: List[str] = []
    scalar_names = {name for name, kind, _, _ in acc.scalar_events if kind != "r"}
    for name in sorted(scalar_names):
        if name in inner_vars or name == var:
            continue
        events = [e for e in acc.scalar_events if e[0] == name]
        verdict = _classify_scalar(name, events, policy)
        if verdict == "private":
            private.append(name)
        elif verdict and verdict.startswith("reduction:"):
            reductions.append((verdict.split(":", 1)[1], name))
        else:
            out.reasons.append(f"loop-carried scalar dependence on {name}")
            return out

    # inner loop variables must be privatized (the Table 1/6 private(j))
    for iv in acc.inner_loop_vars:
        if iv not in private and iv != var:
            private.append(iv)
    # locally-declared scalars need no clause (for (int j ...))
    private = [p for p in private if p not in acc.local_decls]

    # --- profitability heuristic -----------------------------------------------------
    if policy.min_literal_trip > 0:
        trip = literal_trip_count(loop, var)
        if trip is not None and trip < policy.min_literal_trip:
            out.reasons.append(f"literal trip count {trip} below profitability threshold")
            out.skipped_unprofitable = True
            return out

    out.parallelizable = True
    out.private = private
    out.reductions = [(op, name) for op, name in reductions if op in policy.reduction_ops]
    if reductions and not out.reductions:
        # a reduction we cannot express must fall back to 'not parallel'
        out.parallelizable = False
        out.reasons.append("reduction operator outside supported set")
        return out
    if policy.private_iteration_var and not _declared_in_loop(loop):
        out.private.insert(0, var)
    return out


def _classify_scalar(name: str, events: Sequence[Tuple[str, str, int, Optional[str]]],
                     policy: AnalysisPolicy) -> Optional[str]:
    """'private' | 'reduction:<op>' | None (carried)."""
    writes = [e for e in events if e[1] in ("w", "rw")]
    reads = [e for e in events if e[1] == "r"]
    if not writes:
        return "private"  # read-only never reaches here, but harmless
    # pure write-first temp: first event is a plain write and no read of the
    # value from a previous iteration
    first = min(events, key=lambda e: e[2])
    if first[1] == "w" and all(w[1] == "w" or w[2] > first[2] for w in writes):
        # reads may follow the write within the iteration
        return "private"
    # reduction: every write is the same reduction op and no standalone reads
    ops = {e[3] for e in writes}
    if len(ops) == 1 and None not in ops and not reads:
        return f"reduction:{ops.pop()}"
    return None


def _declared_in_loop(loop: For) -> bool:
    return isinstance(loop.init, Decl)


def _independent_pair(w_subs: Tuple[Node, ...], p_subs: Tuple[Node, ...], var: str) -> bool:
    """True if the write/access pair cannot conflict across iterations.

    Independence holds if some dimension has both subscripts affine in the
    loop variable with equal non-zero coefficient and equal offset (distinct
    iterations touch distinct elements).  Anything else — unequal offsets
    (carried flow/anti dependence), non-affine or indirect subscripts,
    loop-invariant writes — is conservatively dependent.
    """
    for dim in range(min(len(w_subs), len(p_subs))):
        a = affine_subscript(w_subs[dim], var)
        b = affine_subscript(p_subs[dim], var)
        if a is not None and b is not None and a[0] != 0 and a == b:
            return True
    return False
