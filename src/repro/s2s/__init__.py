"""The S2S compiler substrate: data-dependence analysis, three sub-compilers
with distinct robustness envelopes, and the ComPar combiner (§5.2)."""

from repro.s2s.compar import ComPar, ComParResult
from repro.s2s.compilers import (
    AutoParLike,
    CetusLike,
    CompileResult,
    Par4AllLike,
    S2SCompiler,
)
from repro.s2s.depend import (
    AnalysisPolicy,
    LoopAnalysis,
    affine_subscript,
    analyze_loop,
    loop_variable,
)

__all__ = [
    "ComPar",
    "ComParResult",
    "AutoParLike",
    "CetusLike",
    "CompileResult",
    "Par4AllLike",
    "S2SCompiler",
    "AnalysisPolicy",
    "LoopAnalysis",
    "affine_subscript",
    "analyze_loop",
    "loop_variable",
]
