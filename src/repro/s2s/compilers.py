"""The three S2S compilers ComPar combines (§5.2), with the distinct
robustness envelopes and conservatisms reported in the paper and in
Harel et al. 2020 / Prema et al. 2017-2019:

* **CetusLike** — the workhorse ('only Cetus managed to compile the examples
  successfully').  Interprocedural over callee bodies included in the
  snippet, conservative on unknown calls, +/-/* reduction patterns.  Fails
  to parse snippets with ``register``, pointer-member ops (``->``),
  struct-member writes, unexpanded ALL-CAPS macros, and times out on long
  snippets (§1: dependence analysis cost grows with loop length).
* **Par4AllLike** — aggressive but fragile: assumes unknown calls are pure
  (the function-side-effect pitfall), detects no reductions, and parses only
  small plain-C snippets (no function definitions, structs, strings, casts
  to typedef names).
* **AutoParLike** — ROSE-based: no interprocedural analysis, ``+``-only
  reductions, chokes on typedef-name casts and macros.

Each returns a :class:`CompileResult`; a parse failure yields
``ok=False`` and no directive, which ComPar's fall-back treats as negative.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.clang import Compound, For, FuncDef, parse, walk
from repro.clang.lexer import LexError
from repro.clang.nodes import Cast, StructRef
from repro.clang.parser import ParseError, TYPE_NAMES
from repro.clang.pragma import Clause, OmpDirective
from repro.s2s.depend import AnalysisPolicy, LoopAnalysis, analyze_loop

__all__ = ["CompileResult", "S2SCompiler", "CetusLike", "Par4AllLike", "AutoParLike"]

_MACRO_CALL = re.compile(r"\b[A-Z][A-Z0-9_]{3,}\s*\(")


@dataclass
class CompileResult:
    """Outcome of one compiler on one snippet."""

    ok: bool                      # False = parse/compile failure
    directive: Optional[str]      # emitted pragma text, or None
    failure: Optional[str] = None
    analysis: Optional[LoopAnalysis] = None

    @property
    def inserted(self) -> bool:
        return self.ok and self.directive is not None


class S2SCompiler:
    """Base: parse -> robustness envelope -> analyze outermost loop -> emit."""

    name = "s2s"
    policy = AnalysisPolicy()

    def compile(self, code: str) -> CompileResult:
        try:
            # deep nesting raises ParseError via the parser's explicit depth
            # limit — no interpreter-dependent RecursionError to guard here
            ast = parse(code)
        except (ParseError, LexError) as exc:
            return CompileResult(False, None, failure=f"parse error: {exc}")
        reason = self.unsupported(code, ast)
        if reason is not None:
            return CompileResult(False, None, failure=reason)
        loops = [n for n in ast.stmts if isinstance(n, For)]
        if not loops:
            loops = [n for n in walk(ast) if isinstance(n, For)]
            if not loops:
                return CompileResult(True, None, failure=None)
        funcdefs: Dict[str, FuncDef] = {
            n.name: n for n in walk(ast) if isinstance(n, FuncDef)
        }
        analysis = analyze_loop(loops[0], funcdefs, self.policy)
        if not analysis.parallelizable:
            return CompileResult(True, None, analysis=analysis)
        return CompileResult(True, self.emit(analysis), analysis=analysis)

    # -- per-compiler robustness envelope -------------------------------------

    def unsupported(self, code: str, ast: Compound) -> Optional[str]:
        return None

    # -- directive emission ------------------------------------------------------

    def emit(self, analysis: LoopAnalysis) -> str:
        clauses: List[Clause] = []
        if analysis.private:
            clauses.append(Clause("private", tuple(dict.fromkeys(analysis.private))))
        for op, var in analysis.reductions:
            clauses.append(Clause("reduction", (f"{op}:{var}",)))
        return OmpDirective("parallel for", clauses).unparse()


def _line_count(code: str) -> int:
    return len([ln for ln in code.splitlines() if ln.strip()])


def _has_register(code: str) -> bool:
    return re.search(r"\bregister\b", code) is not None


def _typedef_casts(ast: Compound) -> bool:
    return any(
        isinstance(n, Cast) and n.to_type.rstrip("*") in TYPE_NAMES
        for n in walk(ast)
    )


class CetusLike(S2SCompiler):
    """The combiner's workhorse; see module docstring."""

    name = "cetus"
    policy = AnalysisPolicy(
        unknown_call="conservative",
        analyze_callee_bodies=True,
        reduction_ops=frozenset({"+", "-", "*"}),
        min_literal_trip=0,
        private_iteration_var=True,
    )

    #: dependence analysis "consumes significant time and memory dependent on
    #: the number of lines inside the loop's scope" (§1) — model as a timeout
    max_lines = 40

    def unsupported(self, code: str, ast: Compound) -> Optional[str]:
        if _has_register(code):
            return "unrecognized keyword: register"
        if "->" in code:
            return "pointer member access unsupported"
        if _MACRO_CALL.search(code):
            return "unexpanded macro in loop bound"
        if any(isinstance(n, StructRef) for n in walk(ast)):
            return "complex structure operations"
        if _line_count(code) > self.max_lines:
            return "dependence analysis timeout on long snippet"
        return None


class Par4AllLike(S2SCompiler):
    name = "par4all"
    policy = AnalysisPolicy(
        unknown_call="conservative",
        analyze_callee_bodies=False,
        reduction_ops=frozenset(),  # no reduction recognition
        min_literal_trip=0,
        private_iteration_var=True,
    )
    max_lines = 25

    def unsupported(self, code: str, ast: Compound) -> Optional[str]:
        if _has_register(code):
            return "unrecognized keyword: register"
        if "->" in code or any(isinstance(n, StructRef) for n in walk(ast)):
            return "struct operations unsupported"
        if any(isinstance(n, FuncDef) for n in walk(ast)):
            return "mixed function definitions and fragments unsupported"
        if '"' in code:
            return "string literals unsupported"
        if _MACRO_CALL.search(code):
            return "unexpanded macro"
        if _typedef_casts(ast):
            return "unknown type name in cast"
        if _line_count(code) > self.max_lines:
            return "snippet too large"
        return None


class AutoParLike(S2SCompiler):
    name = "autopar"
    policy = AnalysisPolicy(
        unknown_call="conservative",
        analyze_callee_bodies=False,
        reduction_ops=frozenset({"+"}),
        min_literal_trip=0,
        private_iteration_var=True,
    )
    max_lines = 45

    def unsupported(self, code: str, ast: Compound) -> Optional[str]:
        if _has_register(code):
            return "unrecognized keyword: register"
        if _typedef_casts(ast):
            return "unknown type name in cast"
        if _MACRO_CALL.search(code):
            return "unexpanded macro"
        if "->" in code or any(isinstance(n, StructRef) for n in walk(ast)):
            return "struct operations unsupported"
        if _line_count(code) > self.max_lines:
            return "snippet too large"
        return None
