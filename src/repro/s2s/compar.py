"""ComPar: the multi-compiler combiner (§5.2, Mosseri et al. 2020).

Runs Cetus-like, Par4All-like, and AutoPar-like on each snippet and merges:

* **parse failure** — ComPar fails only when *every* sub-compiler fails; the
  evaluation then applies the paper's fall-back strategy (count as negative);
* **directive choice** — among sub-compilers that inserted a directive, the
  one from the highest-priority compiler (Cetus > AutoPar > Par4All, matching
  'only Cetus managed to compile the examples successfully') is kept.

For the three classification tasks the combiner exposes boolean predictions
(`predict_directive`, `predict_private`, `predict_reduction`) so it can be
scored with the same metrics as the learned models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.clang.pragma import parse_pragma
from repro.s2s.compilers import (
    AutoParLike,
    CetusLike,
    Par4AllLike,
    S2SCompiler,
)

__all__ = ["ComParResult", "ComPar"]


@dataclass
class ComParResult:
    """Combined outcome for one snippet."""

    parse_failed: bool
    directive: Optional[str]
    per_compiler: dict

    @property
    def inserted(self) -> bool:
        return not self.parse_failed and self.directive is not None

    @property
    def has_private(self) -> bool:
        if self.directive is None:
            return False
        return parse_pragma(self.directive).has_private

    @property
    def has_reduction(self) -> bool:
        if self.directive is None:
            return False
        return parse_pragma(self.directive).has_reduction


class ComPar:
    """The combining driver."""

    def __init__(self, compilers: Optional[Sequence[S2SCompiler]] = None) -> None:
        # priority order: first successful insertion wins
        self.compilers: List[S2SCompiler] = list(compilers) if compilers is not None else [
            CetusLike(),
            AutoParLike(),
            Par4AllLike(),
        ]

    def run(self, code: str) -> ComParResult:
        results = {c.name: c.compile(code) for c in self.compilers}
        if all(not r.ok for r in results.values()):
            return ComParResult(parse_failed=True, directive=None, per_compiler=results)
        directive: Optional[str] = None
        for compiler in self.compilers:
            result = results[compiler.name]
            if result.inserted:
                directive = result.directive
                break
        return ComParResult(parse_failed=False, directive=directive, per_compiler=results)

    # -- task predictions (fall-back negative on parse failure, §5.2) -----------

    def predict_directive(self, codes: Sequence[str]):
        """(predictions, n_parse_failures) over snippets for RQ1."""
        preds = np.zeros(len(codes), dtype=np.int64)
        failures = 0
        for idx, code in enumerate(codes):
            result = self.run(code)
            if result.parse_failed:
                failures += 1
                continue
            preds[idx] = int(result.inserted)
        return preds, failures

    def predict_private(self, codes: Sequence[str]):
        """RQ2/private: positive iff the merged directive carries private."""
        preds = np.zeros(len(codes), dtype=np.int64)
        failures = 0
        for idx, code in enumerate(codes):
            result = self.run(code)
            if result.parse_failed:
                failures += 1
                continue
            preds[idx] = int(result.has_private)
        return preds, failures

    def predict_reduction(self, codes: Sequence[str]):
        preds = np.zeros(len(codes), dtype=np.int64)
        failures = 0
        for idx, code in enumerate(codes):
            result = self.run(code)
            if result.parse_failed:
                failures += 1
                continue
            preds[idx] = int(result.has_reduction)
        return preds, failures
