"""repro — a reproduction of *Learning to Parallelize in a Shared-Memory
Environment with Transformers* (PragFormer, PPoPP 2023).

The package implements the paper's full pipeline from scratch:

- :mod:`repro.clang` — C lexer/parser/AST + OpenMP pragma model (pycparser role)
- :mod:`repro.corpus` — the Open-OMP corpus, generated synthetically
- :mod:`repro.data` — dataset splits for the directive and clause tasks
- :mod:`repro.tokenize` — the four code representations of §4.2
- :mod:`repro.nn` — pure-NumPy transformer substrate (layers, losses, AdamW)
- :mod:`repro.models` — PragFormer, MLM pretraining, BoW baseline
- :mod:`repro.s2s` — data-dependence-based S2S compilers and ComPar
- :mod:`repro.eval` — metrics and error analyses
- :mod:`repro.explain` — LIME-style explainability
- :mod:`repro.benchsuites` — PolyBench-like and SPEC-OMP-like suites
- :mod:`repro.pipeline` — end-to-end experiment functions for every table/figure
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
