"""Ablation A-1 — MLM pretraining vs random initialization.

§4.1 argues DeepSCC-style pretraining provides 'an apt starting point';
the ablation trains the identical architecture from scratch and compares.
Expected shape: pretrained >= scratch (transfer helps or at worst ties).
"""

from conftest import run_once

from repro.pipeline.experiments import ablation_pretraining
from repro.utils import format_table


def test_ablation_pretraining(benchmark):
    result = run_once(benchmark, ablation_pretraining)
    print()
    print(format_table(["Initialization", "Test accuracy"],
                       [(k, round(v, 3)) for k, v in result.items()],
                       title="Ablation A-1: MLM pretraining"))
    assert result["pretrained"] >= result["scratch"] - 0.03
    assert result["pretrained"] > 0.70
