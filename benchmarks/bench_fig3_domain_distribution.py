"""Figure 3 — distribution of snippet source domains.

Paper: generic applications 43 %, unknown (no README) 33.5 %, benchmark
16.5 %, testing 7 %.
"""

from conftest import run_once

from repro.pipeline.experiments import exp_fig3
from repro.utils import format_table


def test_fig3_domain_distribution(benchmark):
    dist = run_once(benchmark, exp_fig3)
    print()
    print(format_table(["Domain", "Fraction"],
                       [(k, round(v, 3)) for k, v in dist.items()],
                       title="Figure 3: snippet source domains"))
    assert abs(sum(dist.values()) - 1.0) < 1e-9
    # paper ordering: generic > unknown > benchmark > testing
    assert dist["generic"] > dist["benchmark"] > dist["testing"]
    assert dist["unknown"] > dist["benchmark"]
    # rough magnitudes
    assert 0.3 < dist["generic"] < 0.55
    assert 0.02 < dist["testing"] < 0.15
