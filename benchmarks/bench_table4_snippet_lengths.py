"""Table 4 — code snippet lengths in the raw database.

Paper shape: a heavily skewed distribution (9,865 < 10 lines; 5,824 in
11-50; 724 in 51-100; 600 > 100) — monotonically decreasing across bins.
"""

from conftest import run_once

from repro.pipeline.experiments import exp_table4
from repro.utils import format_table


def test_table4_snippet_lengths(benchmark):
    hist = run_once(benchmark, exp_table4)
    print()
    print(format_table(["Line Count", "Amount"], list(hist.items()),
                       title="Table 4: snippet lengths"))
    values = list(hist.values())
    assert sum(values) > 0
    # monotone decreasing across the paper's bins
    assert values[0] > values[1] > values[2] >= values[3]
    # most snippets are short (paper: 58 % under 10 lines)
    assert values[0] / sum(values) > 0.5
