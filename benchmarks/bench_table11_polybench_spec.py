"""Table 11 — generalization to PolyBench and SPEC-OMP.

Paper: PragFormer Poly 0.93/0.93/0.93/0.93, ComPar Poly 0.43/0.43/0.43/0.43;
PragFormer SPEC 0.81/0.80/0.80/0.80, ComPar SPEC 0.76/0.75/0.74/0.75 (with
287 SPEC parse failures excluded from ComPar's run).  Shape: PragFormer
transfers to both suites and beats ComPar on PolyBench by a wide margin
(the unexpanded macros defeat every S2S parser).
"""

from conftest import run_once

from repro.pipeline.experiments import exp_table11
from repro.utils import format_table


def test_table11_polybench_spec(benchmark):
    rows = run_once(benchmark, exp_table11)
    print()
    table = [(name, round(m["precision"], 3), round(m["recall"], 3),
              round(m["f1"], 3), round(m["accuracy"], 3),
              m.get("parse_failures", "-"))
             for name, m in rows.items()]
    print(format_table(["System / suite", "P", "R", "F1", "Acc", "parse fails"],
                       table, title="Table 11: external benchmark generalization"))

    prag_poly = rows["PragFormer PolyBench"]
    compar_poly = rows["ComPar PolyBench"]
    prag_spec = rows["PragFormer SPEC-OMP"]
    compar_spec = rows["ComPar SPEC-OMP"]

    # PolyBench: PragFormer transfers (partially at small scale — see
    # EXPERIMENTS.md), ComPar collapses outright on the macros
    assert prag_poly["accuracy"] > compar_poly["accuracy"] + 0.10
    assert prag_poly["f1"] > compar_poly["f1"] + 0.30
    assert compar_poly["parse_failures"] > 0
    assert prag_poly["accuracy"] > 0.55
    # SPEC: register/typedef traits break parsers; PragFormer stays usable
    assert compar_spec["parse_failures"] > 0
    assert prag_spec["accuracy"] > 0.65
    # Both suites stay within a usable band of each other.  The paper has
    # PolyBench slightly ahead of SPEC; at small scale ours reverses (0.63
    # vs 0.78 — see EXPERIMENTS.md on partial PolyBench transfer), so the
    # bench only rules out a collapse on either suite.
    assert prag_poly["accuracy"] >= prag_spec["accuracy"] - 0.20
