"""One-copy weights: fleet memory sublinearity, swap parity, shm hygiene.

A sharded rollout publishes each checkpoint's weight blob into **one**
parent-owned ``multiprocessing.shared_memory`` segment; the N shard
workers attach it read-only and bind their models as zero-copy views.
This bench measures what that buys and holds the invariants that make it
safe to ship:

- **Memory sublinearity** — the probe trace runs through pinned fleets of
  {1, 2, 4, 8} shards (``min_shards == max_shards``, so even n=1 pays a
  real worker process) after a reload published a shared segment.  Each
  worker's ``/proc/<pid>/smaps`` entry for the ``repro-weights`` mapping
  is summed: Rss counts the full segment once per worker (every attacher
  digest-validates the blob, touching every page), while Pss divides each
  shared page among its mappers.  ``sublinearity_ratio_8`` (8-shard
  fleet-wide Pss over 8x the 1-shard Pss) and ``sharing_factor_8``
  (Rss/Pss at 8 shards — "how many processes share each resident page")
  are page-accounting ratios, machine-stable, and gated by
  ``scripts/bench_gate.py``; wall-clock cold-start and reload times ride
  along report-only.

- **Reload parity** — a ``share_weights=True`` fleet and a
  ``--no-shared-weights``-style private fleet hot-swap the same
  checkpoint; their verdicts must agree with each other
  (``reload_parity_mismatches``) and with a fresh eager engine on the new
  checkpoint (``stale_hits_after_swap``) — sharing is a memory
  optimization, never a numerics change, and the swap leaves nothing
  stale.

- **Canary flip** — a canary at fraction 1.0 is started from a second
  segment and promoted; promotion is a pointer flip (the canary segment
  becomes primary) and post-promote verdicts must match the promoted
  checkpoint exactly (``canary_flip.stale_after_promote``).

- **/dev/shm hygiene under faults** — workers are killed while holding
  primary *and* canary mappings, then the engine is closed; the parent
  owns every segment it created, so ``leaked_segments_after_faults``
  must be 0.

Results merge into the ``weight_sharing`` section of
``BENCH_serving.json`` (the throughput bench owns the other sections).
"""

import functools
import glob
import time
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from conftest import timed, write_bench_report

from repro.models import PragFormer
from repro.models.persistence import WEIGHTS_NAME_PREFIX
from repro.models.pragformer import PragFormerConfig
from repro.serve import (
    AutoscaleConfig,
    EngineConfig,
    ModelRegistry,
    MultiModelEngine,
    ShardedEngine,
    SupervisorConfig,
)
from repro.tokenize import Vocab, text_tokens

pytestmark = pytest.mark.perf

SHARD_COUNTS = (1, 2, 4, 8)
HEAD_NAMES = ("directive", "private", "reduction")

# big enough that the segment spans hundreds of pages (so the smaps
# Rss/Pss ratios are well-resolved), small enough to stay a fast bench
CFG = PragFormerConfig(d_model=48, n_heads=4, n_layers=2, d_ff=96,
                       d_head_hidden=32, max_len=32, batch_size=8, seed=0)

#: 64 distinct snippets: digest routing spreads them across 8 shards
PROBE = [f"for (i = 0; i < {n}; i++) a[i] = b[i] + {n};" for n in range(64)]

FAST = SupervisorConfig(request_timeout_s=2.0, heartbeat_interval_s=0.05,
                        heartbeat_timeout_s=0.4, restart_backoff_s=0.01,
                        restart_backoff_max_s=0.05)


def _registry(vocab, seed0):
    registry = ModelRegistry()
    for k, name in enumerate(HEAD_NAMES):
        registry.register(name,
                          PragFormer(len(vocab), replace(CFG, seed=seed0 + k),
                                     rng=seed0 + k),
                          vocab, max_len=CFG.max_len)
    return registry


def _build_multi(path, config):
    """Module-level worker factory (picklable under 'spawn')."""
    return MultiModelEngine(ModelRegistry.from_checkpoint(path),
                            config=config)


def _fleet(path, n_shards, share=True, pinned=False, supervisor=None):
    autoscale = (AutoscaleConfig(min_shards=n_shards, max_shards=n_shards)
                 if pinned else None)
    return ShardedEngine(
        functools.partial(_build_multi, str(path),
                          EngineConfig(max_batch_size=64)),
        n_shards=n_shards, autoscale=autoscale, share_weights=share,
        supervisor=supervisor)


def _verdicts(advisor):
    """(directive prob, sorted clause probs) per probe snippet."""
    return [(full.directive.probability,
             tuple(sorted((name, clause.probability)
                          for name, clause in full.clauses.items())))
            for full in advisor.advise_full_many(PROBE)]


def _mismatches(got, expected, atol=1e-6):
    count = 0
    for (gp, gc), (ep, ec) in zip(got, expected):
        if abs(gp - ep) > atol:
            count += 1
        elif any(abs(g[1] - e[1]) > atol for g, e in zip(gc, ec)):
            count += 1
    return count


def _segments():
    return set(glob.glob(f"/dev/shm/{WEIGHTS_NAME_PREFIX}-*"))


def _weight_mapping_kb(pid, segment_name):
    """(rss_kb, pss_kb) of one process's mapping of the weight segment."""
    try:
        smaps = Path(f"/proc/{pid}/smaps").read_text()
    except OSError:
        return 0, 0
    rss = pss = 0
    in_mapping = False
    for line in smaps.splitlines():
        first = line.split(None, 1)[0] if line else ""
        if "-" in first:  # a map header: "addr-addr perms offset dev inode path"
            in_mapping = segment_name in line
        elif in_mapping and first == "Rss:":
            rss += int(line.split()[1])
        elif in_mapping and first == "Pss:":
            pss += int(line.split()[1])
    return rss, pss


def test_weight_sharing(tmp_path):
    vocab = Vocab.build([text_tokens(code) for code in PROBE], min_freq=1)
    ckpt_a, ckpt_b = tmp_path / "advisor_a", tmp_path / "advisor_b"
    _registry(vocab, 0).save(ckpt_a)
    _registry(vocab, 100).save(ckpt_b)
    with MultiModelEngine(ModelRegistry.from_checkpoint(ckpt_b)) as fresh:
        expected_b = _verdicts(fresh)

    # -- memory sweep: pinned fleets at {1,2,4,8} shards ------------------
    fleet_section = {}
    pss_total = {}
    rss_total = {}
    segment_kb = None
    for n_shards in SHARD_COUNTS:
        fleet, cold_start_s = timed(_fleet, ckpt_a, n_shards, pinned=True)
        try:
            fleet.advise_full_many(PROBE)  # workers up and serving
            _, reload_s = timed(fleet.reload, ckpt_b)
            fleet.advise_full_many(PROBE)  # serve from the mapped segment
            weights = fleet.stats()["weights"]
            assert weights["mode"] == "shared"
            segment = weights["primary_segment"]
            assert segment is not None
            segment_kb = Path(f"/dev/shm/{segment}").stat().st_size // 1024
            # settle: respawns from the reload barrier (there are none in
            # a healthy fleet, but don't race the accounting) and page
            # tables are stable by the time serving returned
            time.sleep(0.05)
            rss = pss = 0
            for worker in fleet._workers[:n_shards]:
                worker_rss, worker_pss = _weight_mapping_kb(worker.pid,
                                                            segment)
                rss += worker_rss
                pss += worker_pss
            rss_total[n_shards] = rss
            pss_total[n_shards] = pss
            fleet_section[str(n_shards)] = {
                "rss_kb_total": rss,
                "pss_kb_total": pss,
                "cold_start_s": round(cold_start_s, 3),
                "reload_s": round(reload_s, 3),
            }
        finally:
            fleet.close()

    # fleet-wide Pss at 8 shards vs 8x the 1-shard cost: the one-copy
    # claim as a page-accounting ratio (a private-copy fleet sits at 1.0)
    sublinearity_ratio_8 = pss_total[8] / (8 * pss_total[1])
    # how many processes share each resident page of the segment
    sharing_factor_8 = rss_total[8] / max(1, pss_total[8])

    # -- reload parity: shared vs private fleets, vs a fresh engine -------
    with _fleet(ckpt_a, 2, share=True) as shared_fleet, \
            _fleet(ckpt_a, 2, share=False) as private_fleet:
        shared_fleet.reload(ckpt_b)
        private_fleet.reload(ckpt_b)
        assert shared_fleet.stats()["weights"]["mode"] == "shared"
        assert private_fleet.stats()["weights"]["mode"] == "private"
        shared_verdicts = _verdicts(shared_fleet)
        private_verdicts = _verdicts(private_fleet)
    reload_parity_mismatches = _mismatches(shared_verdicts, private_verdicts,
                                           atol=0)
    stale_hits_after_swap = _mismatches(shared_verdicts, expected_b)

    # -- canary flip: promote is a pointer flip, nothing stale ------------
    with _fleet(ckpt_a, 2) as fleet:
        _, start_s = timed(fleet.start_canary, ckpt_b, 1.0)
        canary_segment = fleet.stats()["weights"]["canary_segment"]
        _, promote_s = timed(fleet.promote)
        weights = fleet.stats()["weights"]
        assert weights["primary_segment"] == canary_segment
        stale_after_promote = _mismatches(_verdicts(fleet), expected_b)
    canary_flip = {
        "fraction": 1.0,
        "start_s": round(start_s, 4),
        "promote_s": round(promote_s, 4),
        "stale_after_promote": stale_after_promote,
    }

    # -- /dev/shm hygiene: kill workers holding mappings, then close ------
    before = _segments()
    fleet = _fleet(ckpt_a, 2, supervisor=FAST)
    try:
        fleet.reload(ckpt_b)          # primary segment mapped everywhere
        fleet.start_canary(ckpt_a, 0.5)  # canary segment mapped too
        for worker in fleet._workers[:2]:
            worker.kill()
    finally:
        fleet.close()
    leaked_segments_after_faults = len(_segments() - before)

    section = {
        "probe_requests": len(PROBE),
        "segment_kb": segment_kb,
        "fleet": fleet_section,
        "sublinearity_ratio_8": round(sublinearity_ratio_8, 3),
        "sharing_factor_8": round(sharing_factor_8, 2),
        "reload_parity_mismatches": reload_parity_mismatches,
        "stale_hits_after_swap": stale_hits_after_swap,
        "reload_s": fleet_section["8"]["reload_s"],
        "canary_flip": canary_flip,
        "leaked_segments_after_faults": leaked_segments_after_faults,
    }
    path = write_bench_report("serving", {"weight_sharing": section},
                              merge=True)
    print(f"\nweight sharing: segment {segment_kb} kB; 8-shard fleet Pss "
          f"{pss_total[8]} kB vs {8 * pss_total[1]} kB for 8 private "
          f"1-shard copies (sublinearity {sublinearity_ratio_8:.2f}, "
          f"sharing factor {sharing_factor_8:.1f}); reload parity "
          f"{reload_parity_mismatches} mismatches, {stale_hits_after_swap} "
          f"stale after swap; canary promote "
          f"{canary_flip['promote_s'] * 1e3:.1f}ms with "
          f"{stale_after_promote} stale; "
          f"{leaked_segments_after_faults} leaked segments after faults; "
          f"report: {path}")

    # the gates scripts/bench_gate.py holds the committed report to
    assert reload_parity_mismatches == 0
    assert stale_hits_after_swap == 0
    assert stale_after_promote == 0
    assert leaked_segments_after_faults == 0
    assert sublinearity_ratio_8 <= 0.5, (
        f"8-shard fleet Pss not sublinear: {sublinearity_ratio_8:.2f}")
    assert sharing_factor_8 >= 4.0, (
        f"segment pages barely shared: {sharing_factor_8:.1f}")
