"""Table 9 — identifying the need for a private clause.

Paper: PragFormer 0.86/0.85/0.86/0.85; BoW 0.79/0.78/0.78/0.79; ComPar
0.56/0.51/0.40/0.56.  ComPar's precision collapses because it emits
private(i) for the iteration variable on every loop it parallelizes, while
developers rely on the default.
"""

from conftest import run_once

from repro.pipeline.experiments import exp_table9
from repro.utils import format_table


def test_table9_private_clause(benchmark):
    rows = run_once(benchmark, exp_table9)
    print()
    table = [(name, round(m["precision"], 3), round(m["recall"], 3),
              round(m["f1"], 3), round(m["accuracy"], 3))
             for name, m in rows.items()]
    print(format_table(["System", "Precision", "Recall", "F1", "Accuracy"],
                       table, title="Table 9: private clause"))
    prag, bow, compar = rows["PragFormer"], rows["BoW"], rows["ComPar"]
    # ComPar's private(i) over-emission pins its precision near the 50 %
    # base rate of the balanced dataset
    assert compar["precision"] < 0.65
    # learned models clearly beat it on accuracy
    assert prag["accuracy"] > compar["accuracy"] + 0.10
    assert bow["accuracy"] > compar["accuracy"]
    assert prag["accuracy"] > 0.70
