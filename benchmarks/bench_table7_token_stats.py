"""Table 7 — type-level corpus statistics per code representation.

Paper: Text vocab 6,427 / R-Text 2,424 / AST 5,261 / R-AST 3,409; OOV types
398/226/348/309; average lengths 33/30/37/35.  Shape: identifier replacement
shrinks the vocabulary and OOV counts; AST serialization adds tokens.
"""

from conftest import run_once

from repro.pipeline.experiments import exp_table7
from repro.utils import format_table


def test_table7_token_stats(benchmark):
    stats = run_once(benchmark, exp_table7)
    print()
    rows = [(rep, s["train_vocab_size"], s["oov_types"], round(s["avg_length"], 1))
            for rep, s in stats.items()]
    print(format_table(["Representation", "Train vocab", "OOV types", "Avg len"],
                       rows, title="Table 7: type-level statistics"))
    text, rtext = stats["text"], stats["replaced-text"]
    ast, rast = stats["ast"], stats["replaced-ast"]
    # replacement shrinks vocab substantially (paper: 6427 -> 2424)
    assert rtext["train_vocab_size"] < 0.8 * text["train_vocab_size"]
    assert rast["train_vocab_size"] < 0.8 * ast["train_vocab_size"]
    # replacement reduces OOV types
    assert rtext["oov_types"] <= text["oov_types"]
    assert rast["oov_types"] <= ast["oov_types"]
    # AST serialization is longer than raw text on average
    assert ast["avg_length"] > text["avg_length"]
