"""Ablation A-2 — the PragFormer-vs-BoW gap is architectural.

§5.2 credits the transformer's self-attention, not raw parameter count.
Even a single-layer, d=32 transformer should beat the converged linear BoW,
because order information (e.g. reduction vs prefix-sum) is invisible to
count features.
"""

from conftest import run_once

from repro.pipeline.experiments import ablation_capacity
from repro.utils import format_table


def test_ablation_model_capacity(benchmark):
    result = run_once(benchmark, ablation_capacity)
    print()
    print(format_table(["Model", "Test accuracy"],
                       [(k, round(v, 3)) for k, v in result.items()],
                       title="Ablation A-2: capacity vs architecture"))
    # the architectural claim: even the tiny transformer beats BoW, and
    # capacity differences between transformer sizes are second-order
    assert result["transformer_tiny"] > result["bow"] - 0.02
    assert result["transformer_default"] > result["bow"]
    assert abs(result["transformer_default"] - result["transformer_tiny"]) < 0.15
