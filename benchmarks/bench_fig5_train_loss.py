"""Figure 5 — average training loss per epoch for the four representations.

Paper shape: all curves decrease monotonically-ish from ~0.7 toward 0.2;
training loss keeps falling even after validation loss converges.
"""

from conftest import run_once

from repro.pipeline.experiments import exp_fig456
from repro.utils import format_table


def test_fig5_train_loss(benchmark):
    curves = run_once(benchmark, exp_fig456)
    print()
    rows = [[rep] + [round(x, 3) for x in series["train_loss"]]
            for rep, series in curves.items()]
    n_epochs = len(curves["text"]["train_loss"])
    print(format_table(["representation"] + [f"ep{e + 1}" for e in range(n_epochs)],
                       rows, title="Figure 5: training loss by epoch"))
    for rep, series in curves.items():
        loss = series["train_loss"]
        # starts near ln(2) for a balanced-ish binary task
        assert 0.4 < loss[0] < 1.2, rep
        # ends well below the start: the model is actually learning
        assert loss[-1] < loss[0] * 0.85, rep
        # roughly decreasing: final third below first third
        third = max(1, len(loss) // 3)
        assert sum(loss[-third:]) / third < sum(loss[:third]) / third, rep
