"""Figure 6 — average validation loss per epoch for the four
representations.

Paper shape: validation loss falls then converges (and may tick upward as
the model overfits) after 7-9 epochs; the best-epoch rule picks its minimum.
"""

from conftest import run_once

from repro.pipeline.experiments import exp_fig456
from repro.utils import format_table


def test_fig6_valid_loss(benchmark):
    curves = run_once(benchmark, exp_fig456)
    print()
    rows = [[rep] + [round(x, 3) for x in series["valid_loss"]]
            for rep, series in curves.items()]
    n_epochs = len(curves["text"]["valid_loss"])
    print(format_table(["representation"] + [f"ep{e + 1}" for e in range(n_epochs)],
                       rows, title="Figure 6: validation loss by epoch"))
    for rep, series in curves.items():
        loss = series["valid_loss"]
        # the minimum is not at epoch 1: a couple of epochs help
        assert min(loss) < loss[0], rep
        # the curve converges: min is within the training horizon and the
        # post-minimum rise stays bounded (no divergence)
        assert min(loss) > 0.0
        assert loss[-1] < loss[0] * 1.5, rep
