"""Extension experiment (§5.4's claim): 'the attention mechanism of the
model focuses on variables, function names and statements rather than other
factors such as line count.'

Measured as the average CLS-attention mass per token class: identifiers
should receive at least as much attention per occurrence as punctuation
operators.
"""

from conftest import run_once

from repro.explain import attention_by_token_class
from repro.pipeline import get_context, get_scale
from repro.utils import format_table


def _run():
    ctx = get_context(get_scale())
    enc = ctx.encoded()
    codes = [e.record.code for e in ctx.directive_splits.test[:60]]
    return attention_by_token_class(ctx.pragformer, enc.vocab, codes,
                                    max_len=ctx.scale.pragformer.max_len)


def test_attention_focus(benchmark):
    by_class = run_once(benchmark, _run)
    print()
    print(format_table(["Token class", "Mean CLS attention"],
                       [(k, round(v, 5)) for k, v in sorted(by_class.items())],
                       title="Extension: CLS attention by token class (§5.4)"))
    assert "identifier" in by_class and "operator" in by_class
    # identifiers are attended at least comparably to punctuation
    assert by_class["identifier"] > 0.3 * by_class["operator"]
    # all classes received some attention
    assert all(v > 0 for v in by_class.values())