"""Serving throughput: batched InferenceEngine vs sequential advise calls.

The ROADMAP north-star is serving heavy snippet traffic "as fast as the
hardware allows".  This bench replays a 512-request serving trace of
mixed-length snippets through (a) the legacy path — tokenize, pad to
max_len, one forward per snippet, exactly what ``repro advise`` used to do
per file — and (b) the :class:`repro.serve.InferenceEngine`.

The trace is Zipf-distributed over the corpus, as production snippet
traffic is: a hot set of snippets accounts for most requests.  That shape
is what the engine is built for — repeated requests hit the token-digest
LRU and the tokenize-once memo, duplicates inside a batch are coalesced to
a single forward row, and the remaining unique rows run in length-sorted
homogeneous buckets.  The engine must clear >= 5x the sequential
snippets/sec on the trace; an all-distinct cold pass is also recorded.
On the cold pass, batching historically bought ~1.2-1.5x — almost all of
it per-call dispatch overhead that the training hot-path overhaul then
removed from the *sequential* path too, so on a single core the two now
sit near parity (the work is compute-bound either way, and GC pressure
from whatever ran earlier in the process can push the ratio a little
either side of 1.0).  The cold assertion is therefore a loose
not-pathological floor; the trace speedup is the gate that matters.
Results go to ``BENCH_serving.json`` as the first entry in the perf
trajectory.

Five further sections exercise the serving stack's newer layers: a
**shard-count sweep** replays the trace through
:class:`repro.serve.ShardedEngine` at {1, 2, 4} worker processes
(digest-hash routing keeps each shard's LRU hot; 1 shard is the in-process
fallback); an **IPC transport** pass re-runs that sweep with *pinned*
fleets (``min_shards == max_shards``, so every point pays real
cross-process traffic, including n=1) under both the pickling queue
transport and the zero-copy shared-memory rings — interleaved reps with
medians, recording the shm/queue throughput ratio at each shard count,
the sharding crossover point (smallest fleet within the noise tolerance
of the sweep's best), and exact queue-vs-shm verdict parity on a
1k-snippet trace; an **eviction-pressure** pass runs the trace against a
deliberately undersized prediction cache to record the eviction counters
and batch-size histogram end to end; a **clause-gating** pass replays a
majority-negative trace through gated and ungated multi-model engines
(the gate must cut clause-head requests by about the negative fraction
while leaving every fanned-out verdict bit-identical); a
**reload-under-load** pass hot-swaps an advisor checkpoint while client
threads hammer the engine (zero failed requests, zero stale cache hits,
post-swap verdicts provably from the new weights); a **canary rollout**
pass starts a second checkpoint on a digest slice of traffic while client
threads hammer the engine, reads the per-arm counters, and promotes it
live (zero failed requests, zero canary-arm errors, zero stale verdicts
after the promote — the invariants ``scripts/bench_gate.py`` holds CI
to); an **autoscale burst** drives a queue-depth-autoscaled sharded
engine through a bursty then idle phase and records the resize trail;
and a **fault injection** pass kills one of four shards mid-trace with
the deterministic :mod:`repro.serve.chaos` schedule — every request must
still be answered (answered fraction 1.0, zero lost), the supervisor
must respawn the slot, and the recovery time plus supervisor counters go
into the report — then overloads the HTTP front-end past its in-flight
cap to record the shed (429) count (more invariants
``scripts/bench_gate.py`` gates CI on); and a **dirty trace** replays the
committed dirty-snippet corpus (``tests/data/dirty``) plus seeded fuzz
mutants and an oversize snippet through the engine — no exception may
escape, every snippet must be answered, >= 90% of the trace must get a
real (possibly recovered) model verdict, and the ``recovered``/
``rejected_*`` counters land in the report for the bench gate.  On a single-core host the
sweep and autoscale sections measure routing/IPC overhead rather than
scaling — multi-shard numbers sitting below the in-process fallback is
expected there, and the recorded values exist for cross-run comparison,
not as a speedup claim.  The same caveat applies to the IPC pass: with
one core the queue baseline's C-speed pickler plus feeder-thread
pipelining is a strong opponent and the shm rings sit near (not above)
parity; what the gated ratios assert is that the *sharding tax* is gone
— pinned 2-shard throughput within tolerance of 1-shard, where the PR 2
queue sweep lost >30% to re-pickling — and that verdicts are
bit-identical across transports.  On a multi-core host the crossover
counter records where scaling genuinely begins.

Predictions are weight-independent in cost, so an untrained PragFormer at
the default (paper-shaped) size keeps the bench self-contained and fast.
"""

import functools
import json
import statistics
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from conftest import timed, write_bench_report

from repro.clang.fuzz import fuzz_corpus
from repro.corpus import CorpusConfig, build_corpus
from repro.data.encoding import encode_batch
from repro.models import PragFormer
from repro.serve import (
    AdmissionConfig,
    AutoscaleConfig,
    ChaosConfig,
    EngineConfig,
    InferenceEngine,
    ModelRegistry,
    MultiModelEngine,
    ShardedEngine,
    ShmRing,
    SupervisorConfig,
    canary_routes,
    make_server,
)
from repro.tokenize import Vocab, text_tokens

pytestmark = pytest.mark.perf

N_REQUESTS = 512
ZIPF_EXPONENT = 1.35  # ~110 distinct snippets across the 512 requests
SHARD_COUNTS = (1, 2, 4)
IPC_REPS = 3              # interleaved queue/shm reps per shard count
IPC_WARM_PASSES = 2       # warm passes per fleet; best-of is recorded
IPC_CROSSOVER_TOL = 0.9   # "within noise of best" for the crossover point
PRESSURE_CACHE = 48  # smaller than the trace's distinct set -> forced evictions
GATING_REQUESTS = 256     # gating trace length (3 heads -> keep it lean)
GATING_NEGATIVE_FRAC = 0.75  # majority-negative, as real traffic skews
GATE_MARGIN = 0.05
RELOAD_CLIENTS = 4        # threads hammering during the hot swap
CANARY_FRACTION = 0.3     # digest slice the canary rollout serves
FAULT_ROUNDS = 10         # trace rounds through the chaos-faulted fleet
FAULT_KILL_SLOT = 1       # which of the 4 shards the chaos schedule kills
FAULT_KILL_CALL = 3       # the slot's serving-call index that dies
OVERLOAD_CLIENTS = 6      # simultaneous requests against max_inflight=1
DIRTY_CLEAN_REQUESTS = 128  # clean prefix of the dirty trace
DIRTY_MUTANTS = 64          # seeded fuzz mutants appended to the trace
DIRTY_FUZZ_SEED = 5


def _workload():
    corpus = build_corpus(CorpusConfig(n_records=N_REQUESTS, seed=11))
    codes = [record.code for record in corpus.records]
    vocab = Vocab.build([text_tokens(code) for code in codes], min_freq=1)
    rng = np.random.default_rng(0)
    ranks = np.minimum(rng.zipf(ZIPF_EXPONENT, size=N_REQUESTS) - 1, len(codes) - 1)
    trace = [codes[rank] for rank in ranks]
    return codes, trace, vocab


def _sequential_advise(model, vocab, codes, max_len):
    """The legacy per-snippet path: lex, encode, pad to max_len, one
    forward — no caching of any kind, as ``repro advise`` behaved."""
    probs = np.empty(len(codes))
    latencies = []
    for i, code in enumerate(codes):
        start = time.perf_counter()
        split = encode_batch([text_tokens(code)], vocab, max_len, width=max_len)
        probs[i] = model.predict_proba(split)[0, 1]
        latencies.append(time.perf_counter() - start)
    return probs, latencies


def _shard_worker_engine(model, vocab, max_len):
    """Worker-side engine builder for the shard sweep (module-level so it
    pickles under the 'spawn' start method)."""
    return InferenceEngine(model, vocab, max_len=max_len,
                           config=EngineConfig(max_batch_size=128))


def _percentiles(latencies_s):
    lat = np.asarray(latencies_s) * 1e3
    return {f"p{q}_ms": round(float(np.percentile(lat, q)), 3) for q in (50, 95, 99)}


def _advisor_registry(directive_model, vocab, max_len, clause_seed=21):
    """Three-head advisor registry (directive + private + reduction) over
    the bench vocabulary; clause heads are fresh untrained models."""
    registry = ModelRegistry()
    registry.register("directive", directive_model, vocab, max_len=max_len)
    for k, name in enumerate(("private", "reduction"), start=1):
        registry.register(name, PragFormer(len(vocab), rng=clause_seed + k),
                          vocab, max_len=max_len)
    return registry


def _balanced_directive_head(vocab, sample, max_len, min_each=16):
    """An untrained directive head whose verdicts split both ways.

    Untrained heads are often heavily one-sided (their bias is luck of the
    init), and the gating section needs real directive-negative traffic to
    gate.  Scan seeds until one yields at least ``min_each`` snippets of
    each verdict class on ``sample`` — deterministic, and independent of
    how a future default init shifts the bias.
    """
    for seed in range(64):
        candidate = PragFormer(len(vocab), rng=1000 + seed)
        verdicts = InferenceEngine(candidate, vocab,
                                   max_len=max_len).advise_many(sample)
        negative = sum(not a.needs_directive for a in verdicts)
        if min_each <= negative <= len(sample) - min_each:
            return candidate
    raise AssertionError("no seed yields a two-sided directive head")


def _clause_requests(stats):
    """Total clause-head requests in a MultiModelEngine stats snapshot."""
    return sum(stats["heads"][name]["requests"]
               for name in ("private", "reduction"))


def _clause_batches(stats):
    """Total clause-head forward batches in a stats snapshot."""
    return sum(stats["heads"][name]["batches"]
               for name in ("private", "reduction"))


class _SlowAdvisor:
    """Wrap an advisor with a fixed per-call delay so the overload pass
    deterministically holds the admission slot long enough for the
    simultaneous clients to be shed (429) rather than racing through."""

    def __init__(self, inner, delay_s):
        self.inner = inner
        self.delay_s = delay_s

    def advise_full_many(self, codes):
        time.sleep(self.delay_s)
        return self.inner.advise_full_many(codes)

    def stats(self):
        return self.inner.stats()


def test_serving_throughput(benchmark):
    codes, trace, vocab = _workload()
    model = PragFormer(len(vocab))
    max_len = model.config.max_len
    lengths = [len(text_tokens(code)) for code in codes]
    # warm the BLAS/allocator paths once before timing anything
    model.predict_proba(encode_batch([text_tokens(codes[0])], vocab, max_len))

    # -- all-distinct cold pass: batching alone, no cache reuse ------------
    (seq_probs, _), seq_distinct_elapsed = timed(
        _sequential_advise, model, vocab, codes, max_len)
    cold_engine = InferenceEngine(model, vocab, max_len=max_len)
    batched, cold_elapsed = timed(cold_engine.predict_proba, codes)
    # batching must not change the answers
    np.testing.assert_allclose(batched[:, 1], seq_probs, atol=1e-4)
    distinct_speedup = seq_distinct_elapsed / cold_elapsed

    # -- the serving trace: what the engine is designed for ----------------
    (_, seq_lat), seq_elapsed = timed(
        _sequential_advise, model, vocab, trace, max_len)
    seq_throughput = len(trace) / seq_elapsed

    engine = InferenceEngine(model, vocab, max_len=max_len,
                             config=EngineConfig(max_batch_size=128))
    _, trace_elapsed = timed(engine.predict_proba, trace)
    trace_throughput = len(trace) / trace_elapsed
    benchmark.pedantic(engine.predict_proba, args=(trace,), rounds=1, iterations=1)

    # fully warm pass: every request hits the prediction LRU
    _, warm_elapsed = timed(engine.predict_proba, trace)

    # async queue: per-request latency under a full-load burst
    async_engine = InferenceEngine(model, vocab, max_len=max_len)
    with async_engine:
        done_at = [0.0] * len(trace)
        submitted, futures = [], []

        def _stamp(i):
            return lambda fut: done_at.__setitem__(i, time.perf_counter())

        burst_start = time.perf_counter()
        for i, code in enumerate(trace):
            submitted.append(time.perf_counter())
            future = async_engine.submit(code)
            future.add_done_callback(_stamp(i))
            futures.append(future)
        for future in futures:
            future.result(timeout=120)
        async_elapsed = time.perf_counter() - burst_start
        async_lat = [done - t0 for done, t0 in zip(done_at, submitted)]

    # -- shard-count sweep: the trace through 1/2/4 worker processes -------
    # functools.partial of a module-level builder stays picklable under the
    # 'spawn' start method (a local closure would not)
    engine_factory = functools.partial(_shard_worker_engine, model, vocab,
                                       max_len)
    shard_sweep = {}
    for n_shards in SHARD_COUNTS:
        # explicit ipc="shm": the sweep tracks the shipped default, and a
        # future default flip must not silently change what it measures
        with ShardedEngine(engine_factory, n_shards=n_shards,
                           ipc="shm") as sharded:
            _, cold = timed(sharded.predict_proba, trace)
            _, warm = timed(sharded.predict_proba, trace)
            stats = sharded.stats()
        combined = stats["combined"]
        shard_sweep[str(n_shards)] = {
            "snippets_per_s": round(len(trace) / cold, 1),
            "warm_snippets_per_s": round(len(trace) / warm, 1),
            "routed": stats["routed"],
            "cache_hits": combined.get("cache_hits", 0),
            "cache_misses": combined.get("cache_misses", 0),
            "evictions": combined.get("evictions", 0),
            "batches": combined.get("batches", 0),
            "batch_size_hist": combined.get("batch_size_hist", {}),
        }

    # -- ipc transport: queue vs shm at pinned fleet sizes -----------------
    # the sweep above keeps the default autoscaler, whose 1-shard point is
    # the in-process fallback (no IPC at all).  Here min_shards is pinned
    # to max_shards so every point pays real cross-process traffic — the
    # thing the two transports actually differ on.  Reps are interleaved
    # and medianed because process-spawn noise on the single-core bench
    # host swamps any single run; the throwaway ring below absorbs the
    # one-time multiprocessing resource-tracker spawn the first shm
    # segment of a process pays, so it lands on no transport's clock.
    warmup_ring = ShmRing(slots=2, slot_words=64)
    warmup_ring.close()
    warmup_ring.unlink()
    ipc_trace = trace * 2  # 1024 requests: the parity trace
    ipc_runs = {t: {n: {"cold": [], "warm": []} for n in SHARD_COUNTS}
                for t in ("queue", "shm")}
    ipc_probs = {t: {} for t in ("queue", "shm")}
    for rep in range(IPC_REPS):
        for n_shards in SHARD_COUNTS:
            for transport in ("queue", "shm"):
                pinned = AutoscaleConfig(min_shards=n_shards,
                                         max_shards=n_shards)
                with ShardedEngine(engine_factory, n_shards=n_shards,
                                   autoscale=pinned, ipc=transport) as fleet:
                    got, cold = timed(fleet.predict_proba, ipc_trace)
                    warms = []
                    for _ in range(IPC_WARM_PASSES):
                        _, warm_pass = timed(fleet.predict_proba, ipc_trace)
                        warms.append(warm_pass)
                ipc_runs[transport][n_shards]["cold"].append(cold)
                ipc_runs[transport][n_shards]["warm"].append(min(warms))
                if rep == 0:
                    ipc_probs[transport][n_shards] = np.asarray(got)

    # parity: both transports must return *bit-identical* verdicts — the
    # ring frames round-trip float64 exactly, so anything short of == is
    # a transport bug, not tolerance noise
    ipc_parity_mismatches = 0
    for n_shards in SHARD_COUNTS:
        q = ipc_probs["queue"][n_shards]
        s = ipc_probs["shm"][n_shards]
        if q.shape != s.shape:
            ipc_parity_mismatches += len(ipc_trace)
        else:
            ipc_parity_mismatches += int(np.count_nonzero(
                ~np.all(q == s, axis=-1)))

    def _ipc_tput(transport, n_shards, kind="cold"):
        runs = ipc_runs[transport][n_shards][kind]
        return len(ipc_trace) / statistics.median(runs)

    shm_best = max(_ipc_tput("shm", n) for n in SHARD_COUNTS)
    ipc_crossover = min(
        n for n in SHARD_COUNTS
        if _ipc_tput("shm", n) >= IPC_CROSSOVER_TOL * shm_best)
    ipc_transport = {
        "trace_requests": len(ipc_trace),
        "reps": IPC_REPS,
        "pinned_autoscale": True,
        **{t: {str(n): {
                "snippets_per_s": round(_ipc_tput(t, n), 1),
                "warm_snippets_per_s": round(_ipc_tput(t, n, "warm"), 1),
            } for n in SHARD_COUNTS}
           for t in ("queue", "shm")},
        "shm_vs_queue_2shards": round(
            _ipc_tput("shm", 2) / _ipc_tput("queue", 2), 3),
        "shm_warm_vs_queue_2shards": round(
            _ipc_tput("shm", 2, "warm") / _ipc_tput("queue", 2, "warm"), 3),
        # the sharding tax: pinned 2-shard vs pinned 1-shard on the shm
        # transport.  The PR 2 queue sweep lost >30% here to re-pickling;
        # the rings must keep it within noise of flat on one core (and
        # above 1.0 wherever a second real core exists)
        "shm_2shard_scaling": round(
            _ipc_tput("shm", 2) / _ipc_tput("shm", 1), 3),
        "crossover_tolerance": IPC_CROSSOVER_TOL,
        "crossover_shards": ipc_crossover,
        "parity_mismatches": ipc_parity_mismatches,
    }

    # -- eviction pressure: undersized LRU on the same trace ---------------
    pressured = InferenceEngine(
        model, vocab, max_len=max_len,
        config=EngineConfig(max_batch_size=128, cache_capacity=PRESSURE_CACHE))
    _, pressure_elapsed = timed(pressured.predict_proba, trace)
    pressured.predict_proba(trace)  # second pass: hits compete with evictions
    pstats = pressured.stats.as_dict()
    eviction_pressure = {
        "cache_capacity": PRESSURE_CACHE,
        "snippets_per_s": round(len(trace) / pressure_elapsed, 1),
        "cache_hits": pstats["cache_hits"],
        "cache_misses": pstats["cache_misses"],
        "evictions": pstats["evictions"],
        "encode_evictions": pstats["encode_evictions"],
        "batch_size_hist": pstats["batch_size_hist"],
    }

    # -- clause gating on a majority-negative trace ------------------------
    # realistic advisor traffic is mostly directive-negative; the gate must
    # cut clause-head requests by roughly the negative fraction while the
    # fanned-out snippets keep bit-identical verdicts
    gating_model = _balanced_directive_head(vocab, codes[:128], max_len)
    registry = _advisor_registry(gating_model, vocab, max_len)
    directive_verdicts = InferenceEngine(
        gating_model, vocab, max_len=max_len).advise_many(codes)
    neg_pool = [c for c, a in zip(codes, directive_verdicts)
                if not a.needs_directive]
    pos_pool = [c for c, a in zip(codes, directive_verdicts)
                if a.needs_directive]
    assert len(neg_pool) >= 8 and len(pos_pool) >= 8, (
        "gating trace needs both verdict classes "
        f"(got {len(neg_pool)} negative / {len(pos_pool)} positive)")
    gating_rng = np.random.default_rng(7)
    gating_trace = []
    for _ in range(GATING_REQUESTS):
        pool = (neg_pool if gating_rng.random() < GATING_NEGATIVE_FRAC
                else pos_pool)
        gating_trace.append(pool[gating_rng.integers(len(pool))])
    neg_set = set(neg_pool)
    negative_frac = sum(c in neg_set for c in gating_trace) / len(gating_trace)
    with MultiModelEngine(registry, config=EngineConfig(
            max_batch_size=128)) as ungated_engine:
        ungated_full, ungated_elapsed = timed(
            ungated_engine.advise_full_many, gating_trace)
        ungated_stats = ungated_engine.stats()
    with MultiModelEngine(registry, config=EngineConfig(
            max_batch_size=128, gate_margin=GATE_MARGIN)) as gated_engine:
        gated_full, gated_elapsed = timed(
            gated_engine.advise_full_many, gating_trace)
        gated_stats = gated_engine.stats()
    # parity: directive verdicts always agree; fanned-out snippets carry
    # identical clause probabilities
    gating_mismatches = 0
    for u, g in zip(ungated_full, gated_full):
        if g.directive != u.directive:
            gating_mismatches += 1
        elif g.clauses and any(
                abs(g.clauses[n].probability - u.clauses[n].probability) > 1e-6
                for n in u.clauses):
            gating_mismatches += 1
    clause_gating = {
        "trace_requests": len(gating_trace),
        "negative_frac": round(negative_frac, 3),
        "gate_margin": GATE_MARGIN,
        "ungated": {
            "snippets_per_s": round(len(gating_trace) / ungated_elapsed, 1),
            "clause_requests": _clause_requests(ungated_stats),
            "clause_batches": _clause_batches(ungated_stats),
        },
        "gated": {
            "snippets_per_s": round(len(gating_trace) / gated_elapsed, 1),
            "clause_requests": _clause_requests(gated_stats),
            "clause_batches": _clause_batches(gated_stats),
            "gated_snippets": gated_stats["clause_gating"]["gated_snippets"],
            "fanned_out": gated_stats["clause_gating"]["fanned_out"],
        },
        "clause_request_reduction": round(
            1.0 - _clause_requests(gated_stats)
            / max(1, _clause_requests(ungated_stats)), 3),
        "verdict_mismatches": gating_mismatches,
    }

    # -- hot reload under concurrent load ----------------------------------
    # swap an advisor checkpoint while client threads hammer the engine:
    # zero failed requests, zero stale predictions served afterwards
    with tempfile.TemporaryDirectory() as tmp:
        ckpt_a = Path(tmp) / "advisor_a"
        ckpt_b = Path(tmp) / "advisor_b"
        registry.save(ckpt_a)
        _advisor_registry(PragFormer(len(vocab), rng=31), vocab, max_len,
                          clause_seed=40).save(ckpt_b)
        probe = codes[:48]
        live = MultiModelEngine(ModelRegistry.from_checkpoint(ckpt_a),
                                config=EngineConfig(max_batch_size=128))
        live.advise_full_many(probe)  # caches populated under version "0"
        failures: list = []
        # per-thread counters, summed after join — a shared += would lose
        # updates across thread switches and understate the served count
        served = [0] * RELOAD_CLIENTS
        stop = threading.Event()

        def reload_client(slot):
            while not stop.is_set():
                try:
                    served[slot] += len(live.advise_full_many(probe))
                except Exception as exc:  # noqa: BLE001 — counted below
                    failures.append(exc)
                    return

        clients = [threading.Thread(target=reload_client, args=(k,))
                   for k in range(RELOAD_CLIENTS)]
        for t in clients:
            t.start()
        time.sleep(0.2)  # get real load in flight before the swap
        _, reload_elapsed = timed(live.reload, ckpt_b)
        time.sleep(0.2)  # keep serving across the swap boundary
        stop.set()
        for t in clients:
            t.join(timeout=60)
        with MultiModelEngine(ModelRegistry.from_checkpoint(ckpt_b)) as fresh:
            expected_new = fresh.advise_full_many(probe)
        post_swap = live.advise_full_many(probe)
        stale = sum(
            1 for got, exp in zip(post_swap, expected_new)
            if abs(got.directive.probability - exp.directive.probability) > 1e-5
            or any(abs(got.clauses[n].probability - exp.clauses[n].probability)
                   > 1e-5 for n in exp.clauses))
        reload_stats = live.stats()
        reload_under_load = {
            "clients": RELOAD_CLIENTS,
            "requests_served": sum(served),
            "failed_requests": len(failures),
            "reload_s": round(reload_elapsed, 4),
            "model_version": reload_stats["model_version"],
            "stale_predictions_after_swap": stale,
            "cache_hits": reload_stats["combined"]["cache_hits"],
        }
        live.close()

    # -- canary rollout under concurrent load ------------------------------
    # serve checkpoint B to a digest slice next to primary A while client
    # threads hammer the engine, then promote B live: zero failed
    # requests, zero canary-arm errors, post-promote verdicts provably
    # from B — the invariants scripts/bench_gate.py gates CI on
    with tempfile.TemporaryDirectory() as tmp:
        ckpt_a = Path(tmp) / "advisor_a"
        ckpt_b = Path(tmp) / "advisor_b"
        registry.save(ckpt_a)
        _advisor_registry(PragFormer(len(vocab), rng=53), vocab, max_len,
                          clause_seed=60).save(ckpt_b)
        probe = codes[:48]
        canary_slice = sum(canary_routes(c, CANARY_FRACTION) for c in probe)
        assert canary_slice >= 1, "probe must intersect the canary slice"
        live = MultiModelEngine(ModelRegistry.from_checkpoint(ckpt_a),
                                config=EngineConfig(max_batch_size=128))
        failures = []
        served = [0] * RELOAD_CLIENTS
        stop = threading.Event()

        def canary_client(slot):
            while not stop.is_set():
                try:
                    served[slot] += len(live.advise_full_many(probe))
                except Exception as exc:  # noqa: BLE001 — counted below
                    failures.append(exc)
                    return

        clients = [threading.Thread(target=canary_client, args=(k,))
                   for k in range(RELOAD_CLIENTS)]
        for t in clients:
            t.start()
        time.sleep(0.2)  # real load in flight before the rollout
        canary_version, start_s = timed(live.start_canary, ckpt_b,
                                        CANARY_FRACTION)
        time.sleep(0.3)  # accumulate per-arm counters under load
        # one foreground pass guarantees completed canary-arm batches are
        # in the counters before the mid-rollout snapshot (the concurrent
        # clients may all be inside the still-cold canary forward)
        live.advise_full_many(probe)
        mid_stats = live.stats()["canary"]
        _, promote_s = timed(live.promote)
        time.sleep(0.2)  # keep serving across the promote boundary
        stop.set()
        for t in clients:
            t.join(timeout=60)
        with MultiModelEngine(ModelRegistry.from_checkpoint(ckpt_b)) as fresh:
            expected_new = fresh.advise_full_many(probe)
        post_promote = live.advise_full_many(probe)
        canary_stale = sum(
            1 for got, exp in zip(post_promote, expected_new)
            if abs(got.directive.probability - exp.directive.probability) > 1e-5
            or any(abs(got.clauses[n].probability - exp.clauses[n].probability)
                   > 1e-5 for n in exp.clauses))
        final_stats = live.stats()
        arms = mid_stats["arms"]
        canary_rollout = {
            "clients": RELOAD_CLIENTS,
            "fraction": CANARY_FRACTION,
            "probe_canary_slice": canary_slice,
            "version": canary_version,
            "requests_served": sum(served),
            "failed_requests": len(failures),
            "canary_requests": arms["canary"]["requests"],
            "canary_arm_errors": arms["canary"]["errors"],
            "primary_requests": arms["primary"]["requests"],
            "disagreement_rate": arms["canary"]["disagreement_rate"],
            "canary_latency_mean_ms": arms["canary"]["latency_mean_ms"],
            "primary_latency_mean_ms": arms["primary"]["latency_mean_ms"],
            "start_s": round(start_s, 4),
            "promote_s": round(promote_s, 4),
            "model_version": final_stats["model_version"],
            "outcome": final_stats["last_canary"]["outcome"],
            "stale_after_promote": canary_stale,
        }
        live.close()

    # -- autoscale burst: queue-depth resize between min and max shards ----
    autoscale_cfg = AutoscaleConfig(min_shards=1, max_shards=2,
                                    high_watermark=0.25, low_watermark=0.05,
                                    window=4, cooldown_s=0.5)
    with ShardedEngine(engine_factory, n_shards=1,
                       autoscale=autoscale_cfg) as scaled:
        stop = threading.Event()
        burst_errors: list = []

        def burst_client():
            while not stop.is_set():
                try:
                    scaled.predict_proba(trace[:64])
                except Exception as exc:  # noqa: BLE001 — counted below
                    burst_errors.append(exc)
                    return

        burst = [threading.Thread(target=burst_client) for _ in range(4)]
        burst_start = time.monotonic()
        for t in burst:
            t.start()
        while scaled.n_shards < 2 and time.monotonic() - burst_start < 30:
            time.sleep(0.05)
        grew_to = scaled.n_shards
        grow_s = time.monotonic() - burst_start
        stop.set()
        for t in burst:
            t.join(timeout=60)
        assert not burst_errors, burst_errors
        idle_start = time.monotonic()
        while scaled.n_shards > 1 and time.monotonic() - idle_start < 30:
            scaled.predict_proba(trace[:8])
        shrank_to = scaled.n_shards
        scaler_state = scaled.stats()["autoscaler"]
    autoscale_burst = {
        "config": {"min_shards": 1, "max_shards": 2,
                   "high_watermark": 0.25, "low_watermark": 0.05,
                   "window": 4, "cooldown_s": 0.5},
        "grew_to": grew_to,
        "grow_s": round(grow_s, 2),
        "shrank_to": shrank_to,
        "resizes": scaler_state["resizes"],
        "last_resize": scaler_state["last_resize"],
    }

    # -- fault injection: kill one of four shards mid-trace ----------------
    # the chaos schedule kills shard FAULT_KILL_SLOT on its 4th serving
    # call; every request must still be answered (retried on a healthy
    # shard — real verdicts, not degraded stubs), the supervisor must
    # respawn the slot, and nothing may hang or be lost
    fault_cfg = SupervisorConfig(request_timeout_s=5.0,
                                 heartbeat_interval_s=0.05,
                                 heartbeat_timeout_s=0.5,
                                 restart_backoff_s=0.01,
                                 restart_backoff_max_s=0.1)
    fault_chaos = ChaosConfig(kill_at=(FAULT_KILL_CALL,),
                              slots=(FAULT_KILL_SLOT,))
    fault_trace = trace[:64]
    fault_lat = []
    answered = 0
    lost_requests = 0
    recovery_s = None
    with ShardedEngine(engine_factory, n_shards=4, chaos=fault_chaos,
                       supervisor=fault_cfg) as faulted:
        for _ in range(FAULT_ROUNDS):
            round_start = time.perf_counter()
            try:
                got = faulted.predict_proba(fault_trace)
                answered += len(got)
                lost_requests += len(fault_trace) - len(got)
            except Exception:  # noqa: BLE001 — a lost round IS the regression
                lost_requests += len(fault_trace)
            fault_lat.append(time.perf_counter() - round_start)
            if recovery_s is None and (
                    faulted.stats()["supervisor"]["faults"] > 0):
                heal_start = time.monotonic()
                while time.monotonic() - heal_start < 30:
                    snap = faulted.stats()
                    if (snap["supervisor"]["restarts"] >= 1 and all(
                            "error" not in shard
                            for shard in snap["shards"])):
                        break
                    time.sleep(0.01)
                recovery_s = time.monotonic() - heal_start
        fault_sup = faulted.stats()["supervisor"]

    # -- admission under overload: shed with 429, never hang ---------------
    # OVERLOAD_CLIENTS simultaneous requests against max_inflight=1 and a
    # deliberately slow advisor: exactly the situation load shedding
    # exists for.  Every client must get a definitive answer — 200 or an
    # explicit 429 — and the shed counter must account for the rejects.
    overload_advisor = _SlowAdvisor(
        MultiModelEngine(registry, config=EngineConfig(max_batch_size=128)),
        delay_s=0.05)
    server = make_server(overload_advisor, port=0,
                         admission=AdmissionConfig(max_inflight=1,
                                                   retry_after_s=1.0))
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()
    host, port = server.server_address[:2]
    statuses: list = []
    status_lock = threading.Lock()
    start_line = threading.Barrier(OVERLOAD_CLIENTS)

    def overload_client(code):
        start_line.wait()
        request = urllib.request.Request(
            f"http://{host}:{port}/advise",
            data=json.dumps({"code": code}).encode("utf-8"),
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=30) as resp:
                status = resp.status
                resp.read()
        except urllib.error.HTTPError as err:
            status = err.code
            err.read()
        with status_lock:
            statuses.append(status)

    overload = [threading.Thread(target=overload_client, args=(codes[k],))
                for k in range(OVERLOAD_CLIENTS)]
    for t in overload:
        t.start()
    for t in overload:
        t.join(timeout=60)
    shed_counter = server.counters()["shed"]
    server.shutdown()
    server.server_close()
    server_thread.join(timeout=10)
    overload_advisor.inner.close()

    fault_injection = {
        "config": {"n_shards": 4, "kill_slot": FAULT_KILL_SLOT,
                   "kill_call_index": FAULT_KILL_CALL,
                   "request_timeout_s": fault_cfg.request_timeout_s},
        "rounds": FAULT_ROUNDS,
        "requests": FAULT_ROUNDS * len(fault_trace),
        "answered": answered,
        "answered_fraction": round(
            answered / (FAULT_ROUNDS * len(fault_trace)), 4),
        "lost_requests": lost_requests,
        "recovery_s": None if recovery_s is None else round(recovery_s, 3),
        "restarts": fault_sup["restarts"],
        "faults": fault_sup["faults"],
        "retries": fault_sup["retries"],
        "deadline_exceeded": fault_sup["deadline_exceeded"],
        "degraded_answers": fault_sup["degraded_answers"],
        "round_latency": _percentiles(fault_lat),
        # dimensionless: worst round (which eats the dead-worker detection
        # plus the retry) relative to the configured request deadline —
        # bounded means "no hang", which is gateable across machines
        "p99_vs_deadline": round(
            float(np.percentile(np.asarray(fault_lat), 99))
            / fault_cfg.request_timeout_s, 3),
        "admission": {
            "max_inflight": 1,
            "concurrent_clients": OVERLOAD_CLIENTS,
            "requests": OVERLOAD_CLIENTS,
            "ok_200": statuses.count(200),
            "shed_429": statuses.count(429),
            "shed_counter": shed_counter,
            "unanswered": OVERLOAD_CLIENTS - len(statuses),
        },
    }

    # -- dirty trace: hostile input through the full engine path -----------
    # the committed dirty corpus (tests/data/dirty) plus seeded fuzz
    # mutants ride along with clean traffic and an oversize snippet.
    # Contract: the engine never raises, answers every snippet, serves a
    # real model verdict for >= 90% of the trace (recovered lexing counts
    # as real), and only the snippets it *rejects* (byte cap) degrade —
    # all of it visible in the recovered/rejected counters bench_gate
    # holds CI to
    dirty_dir = (Path(__file__).resolve().parent.parent
                 / "tests" / "data" / "dirty")
    dirty_fixtures = [p.read_bytes().decode("utf-8", errors="replace")
                      for p in sorted(dirty_dir.glob("*.c"))]
    assert len(dirty_fixtures) >= 50, "dirty corpus fixtures missing"
    mutants = fuzz_corpus(trace[:32], n=DIRTY_MUTANTS, seed=DIRTY_FUZZ_SEED)
    oversize_snippet = "int big = 1; // " + "x" * 300_000  # > 256 KiB cap
    dirty_codes = (trace[:DIRTY_CLEAN_REQUESTS] + dirty_fixtures
                   + mutants + [oversize_snippet])
    dirty_engine = InferenceEngine(model, vocab, max_len=max_len,
                                   config=EngineConfig(max_batch_size=128))
    engine_exceptions = 0
    try:
        dirty_advices, dirty_elapsed = timed(dirty_engine.advise_many,
                                             dirty_codes)
    except Exception:  # noqa: BLE001 — an escape IS the regression
        engine_exceptions += 1
        dirty_advices, dirty_elapsed = [], float("nan")
    dirty_degraded = sum(1 for a in dirty_advices if a.degraded)
    dirty_stats = dirty_engine.stats.as_dict()
    dirty_trace_section = {
        "requests": len(dirty_codes),
        "clean_requests": DIRTY_CLEAN_REQUESTS,
        "corpus_fixtures": len(dirty_fixtures),
        "fuzz_mutants": len(mutants),
        "fuzz_seed": DIRTY_FUZZ_SEED,
        "snippets_per_s": round(len(dirty_codes) / dirty_elapsed, 1),
        "answered": len(dirty_advices),
        "unanswered": len(dirty_codes) - len(dirty_advices),
        "engine_exceptions": engine_exceptions,
        "degraded_answers": dirty_degraded,
        "advice_yield": round(
            1.0 - dirty_degraded / len(dirty_codes), 4),
        "recovered_snippets": dirty_stats["recovered"],
        "rejected": dirty_stats["rejected"],
        "rejected_oversize": dirty_stats["rejected_oversize"],
        "rejected_budget": dirty_stats["rejected_budget"],
        "rejected_error": dirty_stats["rejected_error"],
    }

    speedup = trace_throughput / seq_throughput
    report = {
        "workload": {
            "requests": len(trace),
            "distinct_snippets": len(set(trace)),
            "zipf_exponent": ZIPF_EXPONENT,
            "token_len_min": int(min(lengths)),
            "token_len_mean": round(float(np.mean(lengths)), 1),
            "token_len_max": int(max(lengths)),
        },
        "sequential_trace": {
            "snippets_per_s": round(seq_throughput, 1),
            "latency": _percentiles(seq_lat),
        },
        "engine_trace": {
            "snippets_per_s": round(trace_throughput, 1),
            "speedup_vs_sequential": round(speedup, 2),
        },
        "engine_trace_warm": {"snippets_per_s": round(len(trace) / warm_elapsed, 1)},
        "engine_async_trace": {
            "snippets_per_s": round(len(trace) / async_elapsed, 1),
            "latency": _percentiles(async_lat),
        },
        "all_distinct_cold": {
            "sequential_snippets_per_s": round(len(codes) / seq_distinct_elapsed, 1),
            "engine_snippets_per_s": round(len(codes) / cold_elapsed, 1),
            "speedup_vs_sequential": round(distinct_speedup, 2),
        },
        "shard_sweep": shard_sweep,
        "ipc": ipc_transport,
        "eviction_pressure": eviction_pressure,
        "clause_gating": clause_gating,
        "reload_under_load": reload_under_load,
        "canary_rollout": canary_rollout,
        "autoscale_burst": autoscale_burst,
        "fault_injection": fault_injection,
        "dirty_trace": dirty_trace_section,
        "stats": engine.stats.as_dict(),
    }
    # merge: bench_weight_sharing.py owns the report's weight_sharing
    # section; rerunning this file must refresh only its own sections
    path = write_bench_report("serving", report, merge=True)
    sweep_txt = ", ".join(f"{n}sh {shard_sweep[str(n)]['snippets_per_s']:.0f}/s"
                          for n in SHARD_COUNTS)
    print(f"\nengine on trace: {trace_throughput:.0f} snippets/s "
          f"({speedup:.1f}x sequential; distinct-cold {distinct_speedup:.2f}x); "
          f"shard sweep: {sweep_txt}; "
          f"ipc shm/queue @2sh {ipc_transport['shm_vs_queue_2shards']:.2f} "
          f"(scaling {ipc_transport['shm_2shard_scaling']:.2f}, crossover "
          f"{ipc_transport['crossover_shards']}sh, "
          f"{ipc_transport['parity_mismatches']} parity mismatches); "
          f"gating -{clause_gating['clause_request_reduction']:.0%} clause "
          f"requests on a {negative_frac:.0%}-negative trace; reload under "
          f"load {reload_under_load['reload_s'] * 1e3:.0f}ms with "
          f"{reload_under_load['failed_requests']} failures; canary "
          f"{canary_rollout['canary_requests']} req at "
          f"{CANARY_FRACTION:.0%} promoted in "
          f"{canary_rollout['promote_s'] * 1e3:.0f}ms with "
          f"{canary_rollout['failed_requests']} failures; autoscale "
          f"{grew_to}->{shrank_to} shards; chaos kill: "
          f"{fault_injection['answered']}/{fault_injection['requests']} "
          f"answered, {fault_injection['lost_requests']} lost, recovered in "
          f"{fault_injection['recovery_s']}s, "
          f"{fault_injection['admission']['shed_429']} shed under overload; "
          f"dirty trace {dirty_trace_section['advice_yield']:.0%} yield "
          f"({dirty_trace_section['recovered_snippets']} recovered, "
          f"{dirty_trace_section['rejected']} rejected); "
          f"report: {path}")

    assert speedup >= 5.0, f"engine only {speedup:.2f}x sequential on the trace"
    # near-parity expected on one core now that the sequential path shares
    # the fused hot path (see module docstring).  The floor only catches
    # pathologies: standalone the ratio measures ~1.0, but mid-suite runs
    # (heap/GC churn from earlier model training) have been observed as low
    # as ~0.4, so a tighter bound would flake there — absolute snippets/s
    # are recorded in the report for trajectory tracking instead
    assert distinct_speedup >= 0.3, "batching pathologically slower than sequential"
    assert engine.stats.cache_hits >= len(trace)  # warm pass served from LRU
    assert set(shard_sweep) == {str(n) for n in SHARD_COUNTS}
    # ipc transports: verdicts bit-identical, shm not pathologically behind
    # the queue baseline, and the 2-shard sharding tax within noise of flat
    # (the committed report is gated tighter by scripts/bench_gate.py; the
    # in-run floors only catch collapses, not single-run spawn noise)
    assert ipc_transport["parity_mismatches"] == 0, "queue/shm verdict drift"
    assert ipc_transport["shm_vs_queue_2shards"] >= 0.4
    assert ipc_transport["shm_2shard_scaling"] >= 0.5
    assert eviction_pressure["evictions"] > 0, "pressure pass must evict"
    # clause gating: fewer clause-head requests AND batches on the
    # majority-negative trace, with zero verdict drift on fanned snippets
    assert (clause_gating["gated"]["clause_requests"]
            < clause_gating["ungated"]["clause_requests"])
    assert (clause_gating["gated"]["clause_batches"]
            <= clause_gating["ungated"]["clause_batches"])
    assert clause_gating["clause_request_reduction"] >= 0.3, (
        "gating saved too little on a majority-negative trace")
    assert clause_gating["verdict_mismatches"] == 0
    # hot reload: nothing dropped, nothing stale
    assert reload_under_load["failed_requests"] == 0
    assert reload_under_load["stale_predictions_after_swap"] == 0
    assert reload_under_load["model_version"].startswith("v1:")
    assert reload_under_load["requests_served"] > 0
    # canary rollout: nothing dropped, the canary slice actually served,
    # no canary-arm errors, and post-promote verdicts from the new weights
    assert canary_rollout["failed_requests"] == 0
    assert canary_rollout["canary_arm_errors"] == 0
    assert canary_rollout["canary_requests"] >= 1
    assert canary_rollout["stale_after_promote"] == 0
    assert canary_rollout["outcome"] == "promoted"
    assert canary_rollout["model_version"] == canary_rollout["version"]
    # autoscaler: the burst grew the fleet, idleness shrank it back
    assert autoscale_burst["grew_to"] == 2, "burst must reach max_shards"
    assert autoscale_burst["shrank_to"] == 1, "idle fleet must shrink to min"
    assert autoscale_burst["resizes"] >= 2
    # fault injection: a killed shard loses nothing — every request
    # answered for real, the slot respawned, latency bounded by deadlines
    assert fault_injection["lost_requests"] == 0
    assert fault_injection["answered_fraction"] == 1.0
    assert fault_injection["faults"] >= 1, "the chaos kill must be observed"
    assert fault_injection["restarts"] >= 1, "the slot must be respawned"
    assert fault_injection["degraded_answers"] == 0, (
        "three healthy shards remain; answers must be real, not degraded")
    assert fault_injection["recovery_s"] is not None
    assert fault_injection["recovery_s"] < 30
    # overload: every client answered definitively — 200 or explicit 429 —
    # and the server's shed counter accounts for the rejects
    admission = fault_injection["admission"]
    assert admission["unanswered"] == 0
    assert admission["ok_200"] >= 1
    assert admission["shed_429"] >= 1, "overload must actually shed"
    assert admission["shed_counter"] >= admission["shed_429"]
    # dirty trace: nothing escapes, everything answered, real verdicts for
    # at least 90% of the trace, the recovery counters visibly engaged
    assert dirty_trace_section["engine_exceptions"] == 0
    assert dirty_trace_section["unanswered"] == 0
    assert dirty_trace_section["advice_yield"] >= 0.9
    assert dirty_trace_section["recovered_snippets"] >= 1
    assert dirty_trace_section["rejected_oversize"] >= 1
