"""Serving throughput: batched InferenceEngine vs sequential advise calls.

The ROADMAP north-star is serving heavy snippet traffic "as fast as the
hardware allows".  This bench replays a 512-request serving trace of
mixed-length snippets through (a) the legacy path — tokenize, pad to
max_len, one forward per snippet, exactly what ``repro advise`` used to do
per file — and (b) the :class:`repro.serve.InferenceEngine`.

The trace is Zipf-distributed over the corpus, as production snippet
traffic is: a hot set of snippets accounts for most requests.  That shape
is what the engine is built for — repeated requests hit the token-digest
LRU and the tokenize-once memo, duplicates inside a batch are coalesced to
a single forward row, and the remaining unique rows run in length-sorted
homogeneous buckets.  The engine must clear >= 5x the sequential
snippets/sec on the trace; an all-distinct cold pass is also recorded.
On the cold pass, batching historically bought ~1.2-1.5x — almost all of
it per-call dispatch overhead that the training hot-path overhaul then
removed from the *sequential* path too, so on a single core the two now
sit near parity (the work is compute-bound either way, and GC pressure
from whatever ran earlier in the process can push the ratio a little
either side of 1.0).  The cold assertion is therefore a loose
not-pathological floor; the trace speedup is the gate that matters.
Results go to ``BENCH_serving.json`` as the first entry in the perf
trajectory.

Two further sections exercise the serving stack's newer layers: a
**shard-count sweep** replays the trace through
:class:`repro.serve.ShardedEngine` at {1, 2, 4} worker processes
(digest-hash routing keeps each shard's LRU hot; 1 shard is the in-process
fallback), and an **eviction-pressure** pass runs the trace against a
deliberately undersized prediction cache to record the eviction counters
and batch-size histogram end to end.  On a single-core host the sweep
measures routing/IPC overhead rather than scaling — multi-shard numbers
sitting below the in-process fallback is expected there, and the recorded
values exist for cross-run comparison, not as a speedup claim.

Predictions are weight-independent in cost, so an untrained PragFormer at
the default (paper-shaped) size keeps the bench self-contained and fast.
"""

import functools
import time

import numpy as np
import pytest

from conftest import timed, write_bench_report

from repro.corpus import CorpusConfig, build_corpus
from repro.data.encoding import encode_batch
from repro.models import PragFormer
from repro.serve import EngineConfig, InferenceEngine, ShardedEngine
from repro.tokenize import Vocab, text_tokens

pytestmark = pytest.mark.perf

N_REQUESTS = 512
ZIPF_EXPONENT = 1.35  # ~110 distinct snippets across the 512 requests
SHARD_COUNTS = (1, 2, 4)
PRESSURE_CACHE = 48  # smaller than the trace's distinct set -> forced evictions


def _workload():
    corpus = build_corpus(CorpusConfig(n_records=N_REQUESTS, seed=11))
    codes = [record.code for record in corpus.records]
    vocab = Vocab.build([text_tokens(code) for code in codes], min_freq=1)
    rng = np.random.default_rng(0)
    ranks = np.minimum(rng.zipf(ZIPF_EXPONENT, size=N_REQUESTS) - 1, len(codes) - 1)
    trace = [codes[rank] for rank in ranks]
    return codes, trace, vocab


def _sequential_advise(model, vocab, codes, max_len):
    """The legacy per-snippet path: lex, encode, pad to max_len, one
    forward — no caching of any kind, as ``repro advise`` behaved."""
    probs = np.empty(len(codes))
    latencies = []
    for i, code in enumerate(codes):
        start = time.perf_counter()
        split = encode_batch([text_tokens(code)], vocab, max_len, width=max_len)
        probs[i] = model.predict_proba(split)[0, 1]
        latencies.append(time.perf_counter() - start)
    return probs, latencies


def _shard_worker_engine(model, vocab, max_len):
    """Worker-side engine builder for the shard sweep (module-level so it
    pickles under the 'spawn' start method)."""
    return InferenceEngine(model, vocab, max_len=max_len,
                           config=EngineConfig(max_batch_size=128))


def _percentiles(latencies_s):
    lat = np.asarray(latencies_s) * 1e3
    return {f"p{q}_ms": round(float(np.percentile(lat, q)), 3) for q in (50, 95, 99)}


def test_serving_throughput(benchmark):
    codes, trace, vocab = _workload()
    model = PragFormer(len(vocab))
    max_len = model.config.max_len
    lengths = [len(text_tokens(code)) for code in codes]
    # warm the BLAS/allocator paths once before timing anything
    model.predict_proba(encode_batch([text_tokens(codes[0])], vocab, max_len))

    # -- all-distinct cold pass: batching alone, no cache reuse ------------
    (seq_probs, _), seq_distinct_elapsed = timed(
        _sequential_advise, model, vocab, codes, max_len)
    cold_engine = InferenceEngine(model, vocab, max_len=max_len)
    batched, cold_elapsed = timed(cold_engine.predict_proba, codes)
    # batching must not change the answers
    np.testing.assert_allclose(batched[:, 1], seq_probs, atol=1e-4)
    distinct_speedup = seq_distinct_elapsed / cold_elapsed

    # -- the serving trace: what the engine is designed for ----------------
    (_, seq_lat), seq_elapsed = timed(
        _sequential_advise, model, vocab, trace, max_len)
    seq_throughput = len(trace) / seq_elapsed

    engine = InferenceEngine(model, vocab, max_len=max_len,
                             config=EngineConfig(max_batch_size=128))
    _, trace_elapsed = timed(engine.predict_proba, trace)
    trace_throughput = len(trace) / trace_elapsed
    benchmark.pedantic(engine.predict_proba, args=(trace,), rounds=1, iterations=1)

    # fully warm pass: every request hits the prediction LRU
    _, warm_elapsed = timed(engine.predict_proba, trace)

    # async queue: per-request latency under a full-load burst
    async_engine = InferenceEngine(model, vocab, max_len=max_len)
    with async_engine:
        done_at = [0.0] * len(trace)
        submitted, futures = [], []

        def _stamp(i):
            return lambda fut: done_at.__setitem__(i, time.perf_counter())

        burst_start = time.perf_counter()
        for i, code in enumerate(trace):
            submitted.append(time.perf_counter())
            future = async_engine.submit(code)
            future.add_done_callback(_stamp(i))
            futures.append(future)
        for future in futures:
            future.result(timeout=120)
        async_elapsed = time.perf_counter() - burst_start
        async_lat = [done - t0 for done, t0 in zip(done_at, submitted)]

    # -- shard-count sweep: the trace through 1/2/4 worker processes -------
    # functools.partial of a module-level builder stays picklable under the
    # 'spawn' start method (a local closure would not)
    engine_factory = functools.partial(_shard_worker_engine, model, vocab,
                                       max_len)
    shard_sweep = {}
    for n_shards in SHARD_COUNTS:
        with ShardedEngine(engine_factory, n_shards=n_shards) as sharded:
            _, cold = timed(sharded.predict_proba, trace)
            _, warm = timed(sharded.predict_proba, trace)
            stats = sharded.stats()
        combined = stats["combined"]
        shard_sweep[str(n_shards)] = {
            "snippets_per_s": round(len(trace) / cold, 1),
            "warm_snippets_per_s": round(len(trace) / warm, 1),
            "routed": stats["routed"],
            "cache_hits": combined.get("cache_hits", 0),
            "cache_misses": combined.get("cache_misses", 0),
            "evictions": combined.get("evictions", 0),
            "batches": combined.get("batches", 0),
            "batch_size_hist": combined.get("batch_size_hist", {}),
        }

    # -- eviction pressure: undersized LRU on the same trace ---------------
    pressured = InferenceEngine(
        model, vocab, max_len=max_len,
        config=EngineConfig(max_batch_size=128, cache_capacity=PRESSURE_CACHE))
    _, pressure_elapsed = timed(pressured.predict_proba, trace)
    pressured.predict_proba(trace)  # second pass: hits compete with evictions
    pstats = pressured.stats.as_dict()
    eviction_pressure = {
        "cache_capacity": PRESSURE_CACHE,
        "snippets_per_s": round(len(trace) / pressure_elapsed, 1),
        "cache_hits": pstats["cache_hits"],
        "cache_misses": pstats["cache_misses"],
        "evictions": pstats["evictions"],
        "encode_evictions": pstats["encode_evictions"],
        "batch_size_hist": pstats["batch_size_hist"],
    }

    speedup = trace_throughput / seq_throughput
    report = {
        "workload": {
            "requests": len(trace),
            "distinct_snippets": len(set(trace)),
            "zipf_exponent": ZIPF_EXPONENT,
            "token_len_min": int(min(lengths)),
            "token_len_mean": round(float(np.mean(lengths)), 1),
            "token_len_max": int(max(lengths)),
        },
        "sequential_trace": {
            "snippets_per_s": round(seq_throughput, 1),
            "latency": _percentiles(seq_lat),
        },
        "engine_trace": {
            "snippets_per_s": round(trace_throughput, 1),
            "speedup_vs_sequential": round(speedup, 2),
        },
        "engine_trace_warm": {"snippets_per_s": round(len(trace) / warm_elapsed, 1)},
        "engine_async_trace": {
            "snippets_per_s": round(len(trace) / async_elapsed, 1),
            "latency": _percentiles(async_lat),
        },
        "all_distinct_cold": {
            "sequential_snippets_per_s": round(len(codes) / seq_distinct_elapsed, 1),
            "engine_snippets_per_s": round(len(codes) / cold_elapsed, 1),
            "speedup_vs_sequential": round(distinct_speedup, 2),
        },
        "shard_sweep": shard_sweep,
        "eviction_pressure": eviction_pressure,
        "stats": engine.stats.as_dict(),
    }
    path = write_bench_report("serving", report)
    sweep_txt = ", ".join(f"{n}sh {shard_sweep[str(n)]['snippets_per_s']:.0f}/s"
                          for n in SHARD_COUNTS)
    print(f"\nengine on trace: {trace_throughput:.0f} snippets/s "
          f"({speedup:.1f}x sequential; distinct-cold {distinct_speedup:.2f}x); "
          f"shard sweep: {sweep_txt}; report: {path}")

    assert speedup >= 5.0, f"engine only {speedup:.2f}x sequential on the trace"
    # near-parity expected on one core now that the sequential path shares
    # the fused hot path (see module docstring).  The floor only catches
    # pathologies: standalone the ratio measures ~1.0, but mid-suite runs
    # (heap/GC churn from earlier model training) have been observed as low
    # as ~0.4, so a tighter bound would flake there — absolute snippets/s
    # are recorded in the report for trajectory tracking instead
    assert distinct_speedup >= 0.3, "batching pathologically slower than sequential"
    assert engine.stats.cache_hits >= len(trace)  # warm pass served from LRU
    assert set(shard_sweep) == {str(n) for n in SHARD_COUNTS}
    assert eviction_pressure["evictions"] > 0, "pressure pass must evict"
