"""Training throughput: the fused hot path vs the pre-overhaul loop.

Training wall-time — not inference — is the binding constraint on iterating
over parallelization advisors: every model behind the serving stack comes
out of the §4.1 MLM pretraining + §4.3 fine-tuning recipe.  This bench
replays both loops twice:

* **legacy** — a faithful inline reconstruction of the pre-overhaul hot
  path (the same technique ``bench_serving_throughput`` uses for its
  sequential baseline): per-parameter AdamW with per-parameter clipping,
  post-LN blocks built from separate residual adds + ``LayerNorm``,
  attention whose scores/softmax/dropout each allocate fresh full-size
  temporaries, allocation-per-call dropout masks and GELU, a dense MLM
  head that projects *every* position into vocab-sized logits
  (``masked_cross_entropy`` over (B, L, V)), float64 loss masks, int64
  ids;
* **fused** — the shipped path: flat-parameter arena
  (:class:`repro.nn.FusedAdamW` stepping the whole model in ~10 vectorized
  calls, clip as one dot product), fused residual+LayerNorm, pooled
  scratch buffers keyed per slot, in-place softmax/GELU/dropout, int32
  ids, and the masked-position gather in ``MLMPretrainer.fit`` that runs
  the vocab-sized head GEMM on the ~15 % of positions that carry loss.

Both paths start from identical weights and consume identical rng streams,
so their losses agree to float round-off (asserted in the smoke test);
only the execution strategy differs.  Reported per section: steps/sec,
epoch wall-time, and real tokens/sec, plus an optimizer-only microbench.

The **pretraining** section is the 2x gate.  Its workload uses a
paper-scale vocabulary (DeepSCC inherits RoBERTa's tokenizer; the paper's
corpus lexes to thousands of types, where the V-sized head projection
dominates the step) — the generated bench corpus only lexes to a few
hundred types, which would understate the dense head's cost.  The
fine-tune sections use the real corpus pipeline end to end and report
their (more modest, dispatch-bound) speedups alongside.

The **ddp** section (PR 9) measures the shared-memory data-parallel
trainer at {1, 2, 4} workers on one MLM workload: steps/sec (report-only —
the bench host is a single core, so wall-clock cannot scale), the
bit-identity parity counter (gated ``== 0``), the reduce-ops-per-step
invariant (gated ``== 1``: the all-reduce must stay one vectorized sum),
and the machine-independent *counter speedup* — total examples over the
busiest rank's examples — which is what the ≥1.5x-at-2-workers gate runs
on.

Results go to ``BENCH_training.json``.  The throughput sweep and the DDP
sweep each rewrite the report, so both merge the other's committed section
forward instead of dropping it.
"""

import json
import time
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from conftest import timed, write_bench_report

from repro.corpus import CorpusConfig, build_corpus
from repro.data.encoding import EncodedSplit, encode_batch
from repro.models.pragformer import (
    PragFormer,
    PragFormerConfig,
    _JointModel,
    _length_bucketed_batches,
    trim_batch,
)
from repro.models.pretrain import MLMConfig, MLMPretrainer, _Joint, mask_tokens
from repro.nn import (
    AdamW,
    EncoderConfig,
    FusedAdamW,
    LayerNorm,
    clip_grad_norm,
    masked_cross_entropy,
)
from repro.nn.attention import _NEG_INF
from repro.nn.module import Module
from repro.tokenize import Vocab, text_tokens

pytestmark = pytest.mark.perf

TRAINING_REPORT = Path(__file__).resolve().parent / "BENCH_training.json"

#: keys write_bench_report adds around the payload; stripped when carrying
#: committed sections forward across partial re-runs
_WRAPPER_KEYS = ("bench", "scale", "python", "machine")


def _committed_sections() -> dict:
    """The committed BENCH_training.json payload, minus the wrapper."""
    try:
        report = json.loads(TRAINING_REPORT.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    return {k: v for k, v in report.items() if k not in _WRAPPER_KEYS}

#: (name, examples, epochs, model config) per fine-tune bench scale.
SCALES = (
    ("small",
     256, 4,
     PragFormerConfig(d_model=32, n_heads=2, n_layers=2, d_ff=64,
                      d_head_hidden=32, max_len=64, batch_size=16, seed=0)),
    ("medium",
     512, 2,
     PragFormerConfig(d_model=64, n_heads=4, n_layers=2, d_ff=128,
                      d_head_hidden=64, max_len=110, batch_size=32, seed=0)),
)

#: MLM pretraining workload (the 2x gate): paper-scale vocabulary, §4.3
#: sequence cap, scaled-down encoder.
MLM_VOCAB = 6000
MLM_EXAMPLES = 256
MLM_EPOCHS = 2
MLM_ENCODER = dict(d_model=64, n_heads=4, n_layers=2, d_ff=128, max_len=110)

SPEEDUP_FLOOR = 2.0  # fused must clear this on the pretraining section


# -- the pre-overhaul hot path, reconstructed faithfully --------------------
# (what src/repro/nn looked like before the training hot-path overhaul:
# every temporary freshly allocated, residual adds separate from LayerNorm,
# softmax out of place, per-parameter optimizer)


def _legacy_softmax(scores):
    shifted = scores - scores.max(axis=-1, keepdims=True)
    np.maximum(shifted, -60.0, out=shifted)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=-1, keepdims=True)
    return shifted


class _LegacyDropout(Module):
    """Pre-overhaul inverted dropout: four fresh allocations per call.

    Consumes the same rng stream as the pooled Dropout, so legacy and
    fused trainings see identical masks."""

    def __init__(self, p, rng):
        super().__init__()
        self.p = p
        self.rng = rng
        self._mask = None

    def forward(self, x):
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = x.dtype.type(1.0 - self.p)
        uniform = self.rng.random(
            x.shape, dtype=x.dtype if x.dtype == np.float32 else np.float64)
        self._mask = (uniform < keep).astype(x.dtype) / keep
        return x * self._mask

    def backward(self, dy):
        if self._mask is None:
            return dy
        return dy * self._mask


class _LegacyGELU(Module):
    """Pre-overhaul tanh GELU: all temporaries freshly allocated."""

    _C = np.sqrt(2.0 / np.pi)

    def __init__(self):
        super().__init__()
        self._cache = None

    def forward(self, x):
        c = x.dtype.type(self._C)
        a = x.dtype.type(0.044715)
        x2 = x * x
        t = np.tanh(c * (x + a * x2 * x))
        self._cache = (x, x2, t)
        return 0.5 * x * (1.0 + t)

    def backward(self, dy):
        x, x2, t = self._cache
        c = x.dtype.type(self._C)
        a3 = x.dtype.type(3 * 0.044715)
        du = c * (1.0 + a3 * x2)
        dt = (1.0 - t * t) * du
        return dy * (0.5 * (1.0 + t) + 0.5 * x * dt)


class _LegacyAttention(Module):
    """Pre-overhaul multi-head attention: fresh scores/attn/context arrays
    and a concatenate-of-merges backward.  Reuses the fused module's
    projection weights so both paths train the same parameters."""

    def __init__(self, attn):
        super().__init__()
        self.d_model = attn.d_model
        self.n_heads = attn.n_heads
        self.d_head = attn.d_head
        self.qkv_proj = attn.qkv_proj
        self.out_proj = attn.out_proj
        self.attn_dropout = _LegacyDropout(attn.attn_dropout.p,
                                           attn.attn_dropout.rng)
        self._cache = None

    def _split(self, x):
        b, l, _ = x.shape
        return x.reshape(b, l, self.n_heads, self.d_head).transpose(0, 2, 1, 3)

    def _merge(self, x):
        b, h, l, dh = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, l, h * dh)

    def forward(self, x, mask=None):
        b, l, _ = x.shape
        qkv = self.qkv_proj.forward(x)
        qkv = qkv.reshape(b, l, 3, self.n_heads, self.d_head).transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scale = 1.0 / float(np.sqrt(self.d_head))
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale
        if mask is not None:
            if mask.ndim == 2:
                mask = (1.0 - mask[:, None, None, :]) * _NEG_INF
            scores += mask
        attn = _legacy_softmax(scores)
        attn_dropped = self.attn_dropout.forward(attn)
        context = attn_dropped @ v
        out = self.out_proj.forward(self._merge(context))
        self._cache = (q, k, v, attn, attn_dropped, scale)
        return out

    def backward(self, dy):
        q, k, v, attn, attn_dropped, scale = self._cache
        dcontext = self._split(self.out_proj.backward(dy))
        dattn_dropped = dcontext @ v.transpose(0, 1, 3, 2)
        dv = attn_dropped.transpose(0, 1, 3, 2) @ dcontext
        dattn = self.attn_dropout.backward(dattn_dropped)
        inner = (dattn * attn).sum(axis=-1, keepdims=True)
        dscores = attn * (dattn - inner)
        dq = (dscores @ k) * scale
        dk = (dscores.transpose(0, 1, 3, 2) @ q) * scale
        dqkv = np.concatenate(
            [self._merge(dq), self._merge(dk), self._merge(dv)], axis=-1)
        return self.qkv_proj.backward(dqkv)


class _LegacyEncoderLayer(Module):
    """Pre-overhaul post-LN block: ``x = LN(x + sublayer(x))`` with the
    residual sum materialized separately from an unfused LayerNorm."""

    def __init__(self, layer):
        super().__init__()
        self.attn = _LegacyAttention(layer.attn)
        self.ln1 = self._layernorm_from(layer.ln1)
        self.ffn = layer.ffn
        self.ffn.act = _LegacyGELU()
        self.ffn.drop = _LegacyDropout(layer.ffn.drop.p, layer.ffn.drop.rng)
        self.ln2 = self._layernorm_from(layer.ln2)
        self.drop1 = _LegacyDropout(layer.drop1.p, layer.drop1.rng)
        self.drop2 = _LegacyDropout(layer.drop2.p, layer.drop2.rng)

    @staticmethod
    def _layernorm_from(rln):
        ln = LayerNorm(rln.gamma.data.size, eps=rln.eps)
        ln.gamma = rln.gamma
        ln.beta = rln.beta
        return ln

    def forward(self, x, mask=None):
        x = self.ln1.forward(x + self.drop1.forward(self.attn.forward(x, mask)))
        x = self.ln2.forward(x + self.drop2.forward(self.ffn.forward(x)))
        return x

    def backward(self, dy):
        d = self.ln2.backward(dy)
        d = d + self.ffn.backward(self.drop2.backward(d))
        d = self.ln1.backward(d)
        d = d + self.attn.backward(self.drop1.backward(d))
        return d


def _legacyfy_encoder(enc) -> None:
    """Swap an encoder's hot-path modules for the pre-overhaul
    implementations in place (weights and rng streams are shared, so the
    legacy model is the *same* model, executed the old way)."""
    enc.emb_drop = _LegacyDropout(enc.emb_drop.p, enc.emb_drop.rng)
    enc.layers = [_LegacyEncoderLayer(layer) for layer in enc.layers]


def _legacyfy(model: PragFormer) -> PragFormer:
    """Legacy-execute a fresh PragFormer (see :func:`_legacyfy_encoder`)."""
    _legacyfy_encoder(model.encoder)
    model.head.drop = _LegacyDropout(model.head.drop.p, model.head.drop.rng)
    return model


# -- workload + measurement -------------------------------------------------


def _workload(n_examples: int, max_len: int, seed: int = 7):
    """Ragged-length labelled split + vocab from real corpus snippets."""
    corpus = build_corpus(CorpusConfig(n_records=n_examples, seed=seed))
    token_lists = [text_tokens(rec.code) for rec in corpus.records]
    vocab = Vocab.build(token_lists, min_freq=1)
    labels = [int(rec.has_omp) for rec in corpus.records]
    return encode_batch(token_lists, vocab, max_len, labels=labels,
                        width=max_len), vocab


def _steps_per_epoch(n: int, batch_size: int) -> int:
    """Batch count produced by ``_length_bucketed_batches`` (shape-only)."""
    lengths = np.ones(n)
    return len(_length_bucketed_batches(lengths, batch_size,
                                        np.random.default_rng(0)))


def _legacy_split(split: EncodedSplit) -> EncodedSplit:
    """The pre-overhaul data layout: int64 ids."""
    return EncodedSplit(split.ids.astype(np.int64), split.mask, split.labels)


def _make_model(config, vocab_size, legacy: bool) -> PragFormer:
    model = PragFormer(vocab_size, config)
    return _legacyfy(model) if legacy else model


def _run_fit(config: PragFormerConfig, vocab_size: int, split: EncodedSplit,
             epochs: int, legacy: bool):
    """(steps/sec, epoch wall-time, tokens/sec) for one full fit()."""
    warm = _make_model(config, vocab_size, legacy)
    warm.fit(split, epochs=1)  # warm BLAS, allocator, and caches
    # best of two timed runs: the bench host is a shared single core, and
    # a single fit() is short enough for scheduler noise to swing it
    elapsed = np.inf
    for _ in range(2):
        model = _make_model(config, vocab_size, legacy)
        _, run = timed(model.fit, split, epochs=epochs)
        elapsed = min(elapsed, run)
    steps = epochs * _steps_per_epoch(len(split), config.batch_size)
    real_tokens = epochs * float(split.mask.sum())
    return {
        "steps_per_s": round(steps / elapsed, 2),
        "epoch_wall_s": round(elapsed / epochs, 4),
        "tokens_per_s": round(real_tokens / elapsed, 1),
        "steps": steps,
        "elapsed_s": round(elapsed, 4),
    }


def _mlm_workload(seed: int = 3):
    """Synthetic pretraining corpus at paper-scale vocabulary: Zipf-drawn
    token streams over ``MLM_VOCAB`` types, ragged lengths."""
    rng = np.random.default_rng(seed)
    types = [f"tok{i}" for i in range(MLM_VOCAB - 4)]  # specials add 4
    vocab = Vocab(types)
    max_len = MLM_ENCODER["max_len"]
    token_lists = []
    for _ in range(MLM_EXAMPLES):
        length = int(rng.integers(max_len // 3, max_len))
        ranks = np.minimum(rng.zipf(1.3, size=length) - 1, len(types) - 1)
        token_lists.append([types[r] for r in ranks])
    return encode_batch(token_lists, vocab, max_len, width=max_len), vocab


def _legacy_mlm_fit(pre: MLMPretrainer, ids, mask, epochs: int):
    """Pre-overhaul ``MLMPretrainer.fit``: dense vocab-sized head over every
    position + ``masked_cross_entropy`` on (B, L, V), float64 loss mask,
    per-parameter AdamW and clipping."""
    cfg = pre.cfg
    opt = AdamW(_Joint(pre.encoder, pre.mlm_head), lr=cfg.lr,
                weight_decay=cfg.weight_decay)
    params = pre.encoder.parameters() + pre.mlm_head.parameters()
    n = ids.shape[0]
    bs = cfg.batch_size
    losses = []
    for _ in range(epochs):
        pre.encoder.train()
        order = pre._rng.permutation(n)
        total, batches = 0.0, 0
        for start in range(0, n, bs):
            sel = order[start : start + bs]
            b_ids, b_mask = trim_batch(ids[sel], mask[sel])
            corrupted, targets, loss_mask = mask_tokens(
                b_ids, b_mask, pre.vocab, pre._rng, cfg)
            loss_mask = loss_mask.astype(np.float64)  # the pre-overhaul dtype
            hidden = pre.encoder.forward(corrupted, b_mask)
            logits = pre.mlm_head.forward(hidden)
            loss, dlogits = masked_cross_entropy(logits, targets, loss_mask)
            opt.zero_grad()
            pre.encoder.backward(pre.mlm_head.backward(dlogits))
            clip_grad_norm(params, cfg.grad_clip)
            opt.step()
            total += loss
            batches += 1
        losses.append(total / max(1, batches))
    return losses


def _make_pretrainer(vocab, legacy: bool) -> MLMPretrainer:
    enc_cfg = EncoderConfig(vocab_size=len(vocab), **MLM_ENCODER)
    pre = MLMPretrainer(enc_cfg, vocab, MLMConfig(), rng=0)
    if legacy:
        _legacyfy_encoder(pre.encoder)
    return pre


def _run_pretrain(split: EncodedSplit, vocab, legacy: bool):
    """(steps/sec, epoch wall-time, tokens/sec) for one MLM pretraining."""
    ids = split.ids.astype(np.int64) if legacy else split.ids
    warm = _make_pretrainer(vocab, legacy)
    fit = (lambda e: _legacy_mlm_fit(warm, ids, split.mask, e)) if legacy \
        else (lambda e: warm.fit(ids, split.mask, epochs=e))
    fit(1)  # warm BLAS, allocator, and caches
    elapsed, losses = np.inf, None
    for _ in range(2):  # best of two (see _run_fit)
        timed_pre = _make_pretrainer(vocab, legacy)
        timed_fit = (lambda: _legacy_mlm_fit(timed_pre, ids, split.mask, MLM_EPOCHS)) \
            if legacy else (lambda: timed_pre.fit(ids, split.mask, epochs=MLM_EPOCHS))
        run_losses, run = timed(timed_fit)
        if run < elapsed:
            elapsed, losses = run, run_losses
    bs = MLMConfig().batch_size
    steps = MLM_EPOCHS * ((len(split) + bs - 1) // bs)
    real_tokens = MLM_EPOCHS * float(split.mask.sum())
    return {
        "steps_per_s": round(steps / elapsed, 2),
        "epoch_wall_s": round(elapsed / MLM_EPOCHS, 4),
        "tokens_per_s": round(real_tokens / elapsed, 1),
        "steps": steps,
        "elapsed_s": round(elapsed, 4),
        "final_loss": round(float(losses[-1]), 4),
    }


def _optimizer_microbench(config: PragFormerConfig, vocab_size: int,
                          rounds: int = 200):
    """Step-only timing: arena FusedAdamW vs legacy per-parameter AdamW
    (identical synthetic gradients, clip included)."""
    results = {}
    for name, fused in (("legacy_adamw", False), ("fused_adamw", True)):
        model = PragFormer(vocab_size, config)
        params = model.encoder.parameters() + model.head.parameters()
        opt_cls = FusedAdamW if fused else AdamW
        opt = opt_cls(_JointModel(model), lr=1e-3)
        rng = np.random.default_rng(0)
        for p in params:
            p.grad += rng.normal(size=p.grad.shape).astype(p.grad.dtype)
        start = time.perf_counter()
        for _ in range(rounds):
            if fused:
                opt.clip_grad_norm(1.0)
            else:
                clip_grad_norm(params, 1.0)
            opt.step()
        elapsed = time.perf_counter() - start
        results[name] = {
            "steps_per_s": round(rounds / elapsed, 1),
            "us_per_step": round(1e6 * elapsed / rounds, 1),
        }
    results["speedup"] = round(
        results["fused_adamw"]["steps_per_s"]
        / results["legacy_adamw"]["steps_per_s"], 2)
    return results


def test_training_throughput(benchmark):
    report = {"speedup_floor": SPEEDUP_FLOOR, "finetune": {}, "pretrain": {}}
    # carry the committed DDP section forward (test_ddp_scaling owns it)
    committed = _committed_sections()
    if "ddp" in committed:
        report["ddp"] = committed["ddp"]

    # -- §4.1 MLM pretraining (the 2x gate) --------------------------------
    mlm_split, mlm_vocab = _mlm_workload()
    mlm_legacy = _run_pretrain(mlm_split, mlm_vocab, legacy=True)
    mlm_fused = _run_pretrain(mlm_split, mlm_vocab, legacy=False)
    mlm_speedup = round(mlm_fused["steps_per_s"] / mlm_legacy["steps_per_s"], 2)
    report["pretrain"] = {
        "examples": MLM_EXAMPLES,
        "epochs": MLM_EPOCHS,
        "vocab_size": len(mlm_vocab),
        "batch_size": MLMConfig().batch_size,
        **{k: v for k, v in MLM_ENCODER.items()},
        "legacy": mlm_legacy,
        "fused": mlm_fused,
        "speedup_steps_per_s": mlm_speedup,
    }
    # the gather-based head must not change the objective
    assert abs(mlm_legacy["final_loss"] - mlm_fused["final_loss"]) < 0.05

    # -- §4.3 fine-tuning -------------------------------------------------
    for scale_name, n_examples, epochs, config in SCALES:
        split, vocab = _workload(n_examples, config.max_len)
        legacy_cfg = replace(config, fused_optimizer=False)
        legacy = _run_fit(legacy_cfg, len(vocab), _legacy_split(split),
                          epochs, legacy=True)
        fused = _run_fit(config, len(vocab), split, epochs, legacy=False)
        speedup = round(fused["steps_per_s"] / legacy["steps_per_s"], 2)
        report["finetune"][scale_name] = {
            "examples": n_examples,
            "epochs": epochs,
            "batch_size": config.batch_size,
            "d_model": config.d_model,
            "n_layers": config.n_layers,
            "max_len": config.max_len,
            "legacy": legacy,
            "fused": fused,
            "speedup_steps_per_s": speedup,
        }
    report["optimizer_microbench"] = _optimizer_microbench(SCALES[1][3],
                                                           vocab_size=2000)

    # keep pytest-benchmark's timing hooks in the loop without re-running
    # the whole sweep: one representative fused epoch
    small_cfg = SCALES[0][3]
    small_split, small_vocab = _workload(64, small_cfg.max_len)
    benchmark.pedantic(
        lambda: PragFormer(len(small_vocab), small_cfg).fit(small_split, epochs=1),
        rounds=1, iterations=1)

    path = write_bench_report("training", report)
    ft = ", ".join(
        f"{name} {entry['speedup_steps_per_s']:.2f}x"
        for name, entry in report["finetune"].items())
    print(f"\ntraining throughput — pretrain: {mlm_fused['steps_per_s']:.1f} "
          f"steps/s ({mlm_speedup:.2f}x legacy); finetune: {ft}; "
          f"opt micro {report['optimizer_microbench']['speedup']:.1f}x; "
          f"report: {path}")

    assert mlm_speedup >= SPEEDUP_FLOOR, (
        f"fused pretraining only {mlm_speedup:.2f}x legacy steps/sec "
        f"(floor {SPEEDUP_FLOOR}x)")


# -- data-parallel scaling (PR 9) -------------------------------------------

#: DDP sweep workload: smaller than the 2x-gate pretraining workload —
#: the section's gates are on algorithmic counters, not wall time.
DDP_VOCAB = 500
DDP_EXAMPLES = 64
DDP_EPOCHS = 2
DDP_BATCH = 16
DDP_ENCODER = dict(d_model=32, n_heads=2, n_layers=2, d_ff=64, max_len=48)
DDP_WORKERS = (1, 2, 4)


def _ddp_workload(seed: int = 9):
    rng = np.random.default_rng(seed)
    types = [f"tok{i}" for i in range(DDP_VOCAB - 4)]
    vocab = Vocab(types)
    max_len = DDP_ENCODER["max_len"]
    token_lists = []
    for _ in range(DDP_EXAMPLES):
        length = int(rng.integers(max_len // 3, max_len))
        ranks = np.minimum(rng.zipf(1.3, size=length) - 1, len(types) - 1)
        token_lists.append([types[r] for r in ranks])
    return encode_batch(token_lists, vocab, max_len, width=max_len), vocab


def _make_ddp_pretrainer(vocab) -> MLMPretrainer:
    enc_cfg = EncoderConfig(vocab_size=len(vocab), **DDP_ENCODER)
    return MLMPretrainer(enc_cfg, vocab, MLMConfig(batch_size=DDP_BATCH),
                         rng=0)


def test_ddp_scaling():
    """{1, 2, 4}-worker sweep of the shared-memory DDP trainer.

    Gated (bench_gate.py): ``parity_mismatches == 0`` (every worker count
    produces bit-identical step losses and final encoder bytes),
    ``reduce_ops_per_step == 1`` (the all-reduce stays a single vectorized
    sum), and ``workers_2.counter_speedup >= 1.5`` (the per-rank example
    split actually halves the busiest rank's work).  ``steps_per_s`` is
    report-only: the bench host is one noisy core, so wall-clock scaling
    is not gateable — the counters are machine-independent.
    """
    from repro.train import DDPConfig

    split, vocab = _ddp_workload()
    _make_ddp_pretrainer(vocab).fit(split.ids, split.mask, epochs=1,
                                    n_workers=1)  # warm BLAS + allocator
    runs = {}
    for workers in DDP_WORKERS:
        pre = _make_ddp_pretrainer(vocab)
        _, elapsed = timed(pre.fit, split.ids, split.mask,
                           epochs=DDP_EPOCHS, n_workers=workers)
        counters = pre.ddp_stats["counters"]
        runs[workers] = {
            "elapsed": elapsed,
            "step_losses": pre.ddp_stats["step_losses"],
            "state": pre.encoder.state_dict(),
            "counters": counters,
        }

    reference = runs[1]
    parity_mismatches = 0
    for workers in DDP_WORKERS[1:]:
        run = runs[workers]
        if run["step_losses"] != reference["step_losses"]:
            parity_mismatches += 1
        if any(not np.array_equal(run["state"][key], reference["state"][key])
               for key in reference["state"]):
            parity_mismatches += 1

    steps = reference["counters"]["steps"]
    reduce_ops = reference["counters"]["reduce_ops"]
    section = {
        "workload": {
            "examples": DDP_EXAMPLES,
            "epochs": DDP_EPOCHS,
            "batch_size": DDP_BATCH,
            "vocab_size": len(vocab),
            **DDP_ENCODER,
        },
        "grad_shards": DDPConfig().grad_shards,
        "parity_mismatches": parity_mismatches,
        "reduce_ops_per_step": reduce_ops // steps if steps else 0,
        "grad_bytes_per_step":
            reference["counters"]["grad_bytes_reduced"] // max(1, steps),
    }
    for workers in DDP_WORKERS:
        run = runs[workers]
        counters = run["counters"]
        section[f"workers_{workers}"] = {
            "steps_per_s": round(steps / run["elapsed"], 2),
            "elapsed_s": round(run["elapsed"], 4),
            "examples_per_rank": counters["per_rank_examples"],
            # machine-independent scaling: total work over the busiest rank
            "counter_speedup": round(
                counters["examples"] / max(counters["per_rank_examples"]), 2),
        }

    report = _committed_sections()
    report["ddp"] = section
    path = write_bench_report("training", report)
    scaling = ", ".join(
        f"x{w}: {section[f'workers_{w}']['steps_per_s']} steps/s "
        f"({section[f'workers_{w}']['counter_speedup']}x counters)"
        for w in DDP_WORKERS)
    print(f"\nddp scaling — parity mismatches {parity_mismatches}; {scaling}; "
          f"report: {path}")

    assert parity_mismatches == 0
    assert reduce_ops == steps  # ONE vectorized sum per step, ever
    assert section["workers_2"]["counter_speedup"] >= 1.5


@pytest.mark.smoke
def test_training_step_smoke():
    """Fast sanity pass for scripts/check.sh: the legacy replica and the
    fused path start from the same weights, consume the same rng streams,
    and must agree on the training losses to float32 round-off."""
    config = PragFormerConfig(d_model=16, n_heads=2, n_layers=1, d_ff=24,
                              d_head_hidden=12, max_len=24, batch_size=8,
                              seed=5)
    split, vocab = _workload(32, config.max_len)
    legacy_cfg = replace(config, fused_optimizer=False)
    legacy = _make_model(legacy_cfg, len(vocab), legacy=True)
    hist_l = legacy.fit(_legacy_split(split), epochs=1)
    fused = _make_model(config, len(vocab), legacy=False)
    hist_f = fused.fit(split, epochs=1)
    np.testing.assert_allclose(hist_l.train_loss, hist_f.train_loss,
                               rtol=1e-2)
