"""Table 5 — dataset sizes for directive and clause classification.

Paper: directive 14,442/1,274/1,274; clause 6,482/572/572 — i.e. an 80/10/10
split of the corpus (directive) and of the balanced positive subset (clause).
"""

from conftest import run_once

from repro.pipeline.experiments import exp_table5
from repro.utils import format_table


def test_table5_dataset_sizes(benchmark):
    sizes = run_once(benchmark, exp_table5)
    print()
    rows = [(name, s["train"], s["validation"], s["test"])
            for name, s in sizes.items()]
    print(format_table(["Dataset", "Training", "Validation", "Test"], rows,
                       title="Table 5: dataset sizes"))
    for name, s in sizes.items():
        total = s["train"] + s["validation"] + s["test"]
        assert abs(s["train"] / total - 0.8) < 0.03, name
        assert abs(s["validation"] / total - 0.1) < 0.03, name
        assert abs(s["test"] / total - 0.1) < 0.03, name
    # the clause dataset is a subset of the directive positives
    assert sum(sizes["clause"].values()) < sum(sizes["directive"].values())
