"""Ablation A-3 — the 110-token sequence cap of §4.3.

The paper sets max_len to the longest snippet (110 tokens).  Harsher
truncation discards the loop bodies of longer snippets; accuracy should not
*improve* when truncating harder, and 110 should be at or near the best.
"""

from conftest import run_once

from repro.pipeline.experiments import ablation_seq_length
from repro.utils import format_table


def test_ablation_seq_length(benchmark):
    result = run_once(benchmark, ablation_seq_length)
    print()
    print(format_table(["max_len", "Test accuracy"],
                       [(k, round(v, 3)) for k, v in result.items()],
                       title="Ablation A-3: sequence truncation"))
    # 110 (the paper's cap) is not worse than harsh truncation by a margin
    assert result["max_len_110"] >= result["max_len_32"] - 0.05
    # every variant still learns
    for acc in result.values():
        assert acc > 0.6
