"""Extension experiment (§2.1): combining PragFormer with ComPar so that a
directive survives only when both agree.

The paper argues agreement 'verifies the correctness of the directive and
the necessity'.  Expected shape: agreement precision >= each system alone,
at the cost of recall.
"""

from conftest import run_once

from repro.models import HybridAdvisor
from repro.pipeline import get_context, get_scale
from repro.utils import format_table


def _run():
    ctx = get_context(get_scale())
    enc = ctx.encoded()
    codes = [e.record.code for e in ctx.directive_splits.test]
    hybrid = HybridAdvisor(ctx.pragformer, ctx.compar)
    return hybrid.precision_recall_tradeoff(enc.test, codes)


def test_hybrid_agreement(benchmark):
    table = run_once(benchmark, _run)
    print()
    rows = [(name, round(m["precision"], 3), round(m["recall"], 3),
             round(m["f1"], 3), round(m["accuracy"], 3))
            for name, m in table.items()]
    print(format_table(["Policy", "Precision", "Recall", "F1", "Accuracy"],
                       rows, title="Extension: model+S2S combination (§2.1)"))
    # agreement verifies necessity: precision >= each component (with slack)
    assert table["agreement"]["precision"] >= table["compar"]["precision"] - 0.05
    assert table["agreement"]["precision"] >= table["pragformer"]["precision"] - 0.05
    # and recall is sacrificed relative to the model alone
    assert table["agreement"]["recall"] <= table["pragformer"]["recall"] + 1e-9