"""Table 12 + Figure 8 — the paper's four representative examples with
LIME token-importance explanations.

Paper outcomes: (1) PolyBench mvt -> With OpenMP, LIME highlights the loop
variable and arrays; (2) fprintf/stderr loop -> Without, LIME pins the I/O
tokens; (3) the ImageMagick colormap loop -> PragFormer *mispredicts*
Without (unfamiliar ssize_t/IndexPacket); (4) the unannotated maxgrid loop
-> PragFormer predicts With even though the developer never annotated it.
"""

from conftest import run_once

from repro.pipeline.experiments import exp_table12_fig8
from repro.utils import format_table


def test_table12_fig8_explainability(benchmark):
    results = run_once(benchmark, exp_table12_fig8)
    print()
    rows = []
    by_name = {}
    for r in results:
        by_name[r["name"]] = r
        top = ", ".join(f"{tok}:{w:+.3f}" for tok, w in r["top_tokens"][:4])
        rows.append((r["name"], r["label"], r["prediction"],
                     round(r["probability"], 3), top))
    print(format_table(["Example", "Label", "Pred", "P(par)", "Top LIME tokens"],
                       rows, title="Table 12 / Figure 8"))

    # example 1: the parallel kernel is recognised
    assert by_name["polybench_mvt"]["prediction"] == 1
    # example 2: the I/O loop is rejected, and an I/O token ranks among the
    # negatively-weighted evidence
    io = by_name["io_loop"]
    assert io["prediction"] == 0
    opposing_tokens = {tok for tok, _ in io["opposing"]}
    assert opposing_tokens & {"fprintf", "stderr", '"%0.2lf "', "20"}, opposing_tokens
    # example 4: the unannotated-but-parallelizable loop is predicted With
    # OpenMP (the paper's model does the same)
    assert by_name["maxgrid_unannotated"]["prediction"] == 1
    # every explanation produced non-trivial weights
    for r in results:
        assert any(abs(w) > 1e-4 for _, w in r["top_tokens"])
