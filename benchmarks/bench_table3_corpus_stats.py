"""Table 3 — statistics of the OpenMP directives in the raw database.

Paper values (17,013 records): 7,630 with directives; schedule static 7,256;
dynamic 374; reduction 1,455; private 3,403.  The bench regenerates the same
rows at the configured scale and asserts the proportions.
"""

from conftest import run_once

from repro.pipeline.experiments import exp_table3
from repro.utils import format_table


def test_table3_corpus_stats(benchmark):
    stats = run_once(benchmark, exp_table3)
    print()
    print(format_table(["Description", "Amount"], list(stats.items()),
                       title="Table 3: directive statistics"))
    total = stats["total_code_snippets"]
    n_dir = stats["for_loops_with_omp"]
    # ~45 % of snippets carry directives (7630/17013)
    assert 0.35 < n_dir / total < 0.55
    # static + dynamic partition the directives; dynamic is rare (~5 %)
    assert stats["schedule_static"] + stats["schedule_dynamic"] == n_dir
    assert 0.005 < stats["schedule_dynamic"] / n_dir < 0.15
    # private ~45 %, reduction ~19 % of directives
    assert 0.25 < stats["private"] / n_dir < 0.60
    assert 0.08 < stats["reduction"] / n_dir < 0.35
