"""Figure 4 — validation accuracy vs training epochs for the four code
representations.

Paper: raw Text converges highest (~81 %), Replaced-Text ~2 pts lower (78 %),
AST 76 %, Replaced-AST 69 % — text representations beat AST serializations,
and identifier replacement costs accuracy by erasing the naming-convention
signal (§5.1).
"""

from conftest import run_once

from repro.pipeline.experiments import exp_fig456
from repro.utils import format_table


def test_fig4_representation_accuracy(benchmark):
    curves = run_once(benchmark, exp_fig456)
    print()
    rows = []
    best = {}
    for rep, series in curves.items():
        accs = series["valid_accuracy"]
        best[rep] = max(accs)
        rows.append([rep] + [round(a, 3) for a in accs])
    n_epochs = len(curves["text"]["valid_accuracy"])
    print(format_table(["representation"] + [f"ep{e + 1}" for e in range(n_epochs)],
                       rows, title="Figure 4: validation accuracy by epoch"))
    # Raw text is competitive with every alternative (the paper's conclusion
    # is to continue with text).  NOTE (see EXPERIMENTS.md): at the small
    # synthetic scale the paper's 12-point Text-vs-R-AST gap compresses to
    # within noise — our corpus lacks the real GitHub corpus's vocabulary
    # sparsity that penalizes replacement — so the bench asserts text's
    # competitiveness and universal learnability rather than a strict order.
    assert best["text"] >= max(best.values()) - 0.06
    # every representation clearly learns (majority class is ~55 %)
    for rep, acc in best.items():
        assert acc > 0.62, rep
    # all representations improve over their first epoch
    for rep, series in curves.items():
        assert max(series["valid_accuracy"]) >= series["valid_accuracy"][0]
