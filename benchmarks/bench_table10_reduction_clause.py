"""Table 10 — identifying the need for a reduction clause.

Paper: PragFormer 0.89/0.87/0.87/0.87; BoW 0.78/0.78/0.77/0.78; ComPar
0.92/0.52/0.46/0.79 — the deterministic pattern-matcher is almost always
*right* when it emits a reduction (high precision) but misses the min/max
reductions written with if/ternary (low recall).
"""

from conftest import run_once

from repro.pipeline.experiments import exp_table10
from repro.utils import format_table


def test_table10_reduction_clause(benchmark):
    rows = run_once(benchmark, exp_table10)
    print()
    table = [(name, round(m["precision"], 3), round(m["recall"], 3),
              round(m["f1"], 3), round(m["accuracy"], 3))
             for name, m in rows.items()]
    print(format_table(["System", "Precision", "Recall", "F1", "Accuracy"],
                       table, title="Table 10: reduction clause"))
    prag, compar = rows["PragFormer"], rows["ComPar"]
    # the signature shape: ComPar precision very high (pattern matches are
    # nearly always correct when they fire), recall lower (if-style min/max
    # reductions and parse failures are missed)
    assert compar["precision"] > 0.85
    assert compar["recall"] < compar["precision"]
    # PragFormer is a strong classifier on this task (paper: 0.87 accuracy)
    assert prag["accuracy"] > 0.75
    assert prag["f1"] > 0.75
