"""Figure 7 — PragFormer's prediction error rate by snippet length.

Paper: more than 80 % of errors occur on snippets shorter than 20 lines;
only a handful of errors above 50 lines — length does not drive accuracy.
"""

from conftest import run_once

from repro.pipeline.experiments import exp_fig7
from repro.utils import format_table


def test_fig7_error_by_length(benchmark):
    bins = run_once(benchmark, exp_fig7)
    print()
    rows = [(label, s["n"], s["errors"], round(s["error_rate"], 3),
             round(s["share_of_errors"], 3)) for label, s in bins.items()]
    print(format_table(["Length", "n", "errors", "error rate", "share of errors"],
                       rows, title="Figure 7: error rate by snippet length"))
    short_share = bins["<=10"]["share_of_errors"] + bins["11-20"]["share_of_errors"]
    # the paper: >80 % of errors under 20 lines; corpus is short-skewed, so
    # most errors land on short snippets
    assert short_share > 0.6
    # long snippets contribute few errors in absolute terms
    assert bins[">50"]["errors"] <= bins["<=10"]["errors"]
