"""Shared fixtures for the benchmark harness.

Each bench regenerates one of the paper's tables/figures.  Expensive
artifacts (corpus, trained models) are shared through the process-wide
experiment context, so the first bench that needs a model pays its training
cost and later benches reuse it; ``pedantic(rounds=1)`` keeps
pytest-benchmark from re-running the full experiment.

Scale is controlled by ``REPRO_SCALE`` (default 'small').
"""

import pytest

from repro.pipeline import get_context, get_scale


@pytest.fixture(scope="session")
def ctx():
    return get_context(get_scale())


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
