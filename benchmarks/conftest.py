"""Shared fixtures and reporting helpers for the benchmark harness.

Each bench regenerates one of the paper's tables/figures.  Expensive
artifacts (corpus, trained models) are shared through the process-wide
experiment context, so the first bench that needs a model pays its training
cost and later benches reuse it; ``pedantic(rounds=1)`` keeps
pytest-benchmark from re-running the full experiment.

Perf benches additionally emit machine-readable ``BENCH_<name>.json``
reports via :func:`write_bench_report` (timed with
:class:`repro.utils.timing.Timer`), forming the repo's performance
trajectory.  They carry the ``perf`` marker; tier-1 (``pytest -x -q`` from
the repo root) never collects ``bench_*.py`` files, and marked benches can
also be deselected explicitly with ``-m 'not perf'``.  ``smoke``-marked
benches are the fast subset ``scripts/check.sh`` runs after tier-1.

Every bench test — including the table/figure regenerators that have no
dedicated perf report — gets its wall-time recorded by an autouse fixture;
the session writes the collected times to ``BENCH_walltimes.json``, so the
whole harness's cost is part of the perf trajectory without each file
repeating the plumbing.

Scale is controlled by ``REPRO_SCALE`` (default 'small').
"""

import json
import platform
import time
from pathlib import Path

import pytest

from repro.pipeline import get_context, get_scale
from repro.utils.timing import Timer

REPORT_DIR = Path(__file__).resolve().parent

#: test nodeid -> wall seconds, collected by ``_record_walltime``.
_WALLTIMES = {}


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "perf: heavy throughput/latency bench, not part of tier-1")
    config.addinivalue_line(
        "markers", "smoke: fast perf subset run by scripts/check.sh")


@pytest.fixture(autouse=True)
def _record_walltime(request):
    """Record every bench test's wall-time for ``BENCH_walltimes.json``.

    Nodeids are normalized to be relative to this directory — pytest
    prefixes them with ``benchmarks/`` when invoked from the repo root but
    not when invoked from here, and the merge in ``pytest_sessionfinish``
    must key both styles identically."""
    start = time.perf_counter()
    yield
    nodeid = request.node.nodeid.removeprefix("benchmarks/")
    _WALLTIMES[nodeid] = round(time.perf_counter() - start, 3)


def pytest_sessionfinish(session, exitstatus):
    """Write the per-test wall-times collected this session.

    Merged over the existing report rather than overwritten: a filtered
    run (e.g. ``scripts/check.sh``'s smoke subset) refreshes only the
    entries it actually ran, keeping the full-sweep record intact."""
    if not _WALLTIMES:
        return
    tests = dict(_WALLTIMES)
    previous = REPORT_DIR / "BENCH_walltimes.json"
    if previous.is_file():
        try:
            old = json.loads(previous.read_text()).get("tests", {})
        except (json.JSONDecodeError, OSError):
            old = {}
        # normalize legacy prefixed keys, and drop entries whose bench file
        # is gone so renamed/deleted benches don't pollute total_s forever
        old = {nodeid.removeprefix("benchmarks/"): secs
               for nodeid, secs in old.items()}
        old = {nodeid: secs for nodeid, secs in old.items()
               if (REPORT_DIR / nodeid.split("::", 1)[0]).is_file()}
        tests = {**old, **tests}
    write_bench_report("walltimes", {
        "tests": dict(sorted(tests.items())),
        "total_s": round(sum(tests.values()), 3),
    })


@pytest.fixture(scope="session")
def ctx():
    return get_context(get_scale())


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def timed(fn, *args, **kwargs):
    """``(result, elapsed_seconds)`` of one ``fn(*args, **kwargs)`` call."""
    with Timer() as timer:
        result = fn(*args, **kwargs)
    return result, timer.elapsed


def write_bench_report(name: str, payload: dict, merge: bool = False) -> Path:
    """Write ``BENCH_<name>.json`` next to the benches and return its path.

    The payload is wrapped with enough machine context (python version,
    scale) for cross-run comparisons of the perf trajectory.  With
    ``merge=True`` the payload is layered over the existing report's
    top-level sections instead of replacing the file — for reports that
    several bench files contribute to (e.g. ``BENCH_serving.json``: the
    throughput bench owns most sections, the weight-sharing bench owns
    ``weight_sharing``), so a run of one file cannot silently drop the
    other's sections and trip the gate's missing-metric check."""
    report = {
        "bench": name,
        "scale": get_scale().name,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    path = REPORT_DIR / f"BENCH_{name}.json"
    if merge and path.is_file():
        try:
            previous = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            previous = {}
        report.update({key: value for key, value in previous.items()
                       if key not in report})
    report.update(payload)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
