"""Shared fixtures and reporting helpers for the benchmark harness.

Each bench regenerates one of the paper's tables/figures.  Expensive
artifacts (corpus, trained models) are shared through the process-wide
experiment context, so the first bench that needs a model pays its training
cost and later benches reuse it; ``pedantic(rounds=1)`` keeps
pytest-benchmark from re-running the full experiment.

Perf benches additionally emit machine-readable ``BENCH_<name>.json``
reports via :func:`write_bench_report` (timed with
:class:`repro.utils.timing.Timer`), forming the repo's performance
trajectory.  They carry the ``perf`` marker; tier-1 (``pytest -x -q`` from
the repo root) never collects ``bench_*.py`` files, and marked benches can
also be deselected explicitly with ``-m 'not perf'``.

Scale is controlled by ``REPRO_SCALE`` (default 'small').
"""

import json
import platform
from pathlib import Path

import pytest

from repro.pipeline import get_context, get_scale
from repro.utils.timing import Timer

REPORT_DIR = Path(__file__).resolve().parent


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "perf: heavy throughput/latency bench, not part of tier-1")


@pytest.fixture(scope="session")
def ctx():
    return get_context(get_scale())


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def timed(fn, *args, **kwargs):
    """``(result, elapsed_seconds)`` of one ``fn(*args, **kwargs)`` call."""
    with Timer() as timer:
        result = fn(*args, **kwargs)
    return result, timer.elapsed


def write_bench_report(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` next to the benches and return its path.

    The payload is wrapped with enough machine context (python version,
    scale) for cross-run comparisons of the perf trajectory."""
    report = {
        "bench": name,
        "scale": get_scale().name,
        "python": platform.python_version(),
        "machine": platform.machine(),
        **payload,
    }
    path = REPORT_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
