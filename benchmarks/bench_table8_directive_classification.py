"""Table 8 — directive classification: PragFormer vs BoW vs ComPar.

Paper: PragFormer P/R/F1/Acc = 0.80/0.81/0.80/0.80; BoW 0.73/0.74/0.73/0.74;
ComPar 0.51/0.56/0.36/0.50 (221/1,274 parse failures counted negative).
Shape asserted: PragFormer > BoW > ComPar on accuracy, PragFormer's
precision clearly above ComPar's, and ComPar suffers parse failures.
"""

from conftest import run_once

from repro.pipeline.experiments import exp_table8
from repro.utils import format_table


def test_table8_directive_classification(benchmark):
    rows = run_once(benchmark, exp_table8)
    print()
    table = [(name, round(m["precision"], 3), round(m["recall"], 3),
              round(m["f1"], 3), round(m["accuracy"], 3))
             for name, m in rows.items()]
    print(format_table(["System", "Precision", "Recall", "F1", "Accuracy"],
                       table, title="Table 8: identifying the need for a directive"))
    print(f"ComPar parse failures (fallback negative): {rows['ComPar']['parse_failures']}")

    prag, bow, compar = rows["PragFormer"], rows["BoW"], rows["ComPar"]
    # the paper's ordering
    assert prag["accuracy"] > bow["accuracy"]
    assert bow["accuracy"] > compar["accuracy"] - 0.02
    assert prag["accuracy"] > compar["accuracy"] + 0.05
    assert prag["f1"] > compar["f1"]
    # ComPar's precision is the weak point (unnecessary directives, §2.1.1)
    assert compar["precision"] < prag["precision"]
    assert compar["precision"] < 0.80
    # absolute sanity: PragFormer is a usable classifier
    assert prag["accuracy"] > 0.70
    assert prag["f1"] > 0.70
